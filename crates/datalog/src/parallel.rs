//! Parallel stratum evaluation: scoped worker threads over snapshot rounds.
//!
//! # The per-worker-delta / deterministic-merge invariant
//!
//! Rules within one semi-naive round are independent given the *previous*
//! round's delta, so a round can fan out across threads — but only if two
//! invariants hold, and every change to this module must preserve them:
//!
//! 1. **Derivation reads a frozen snapshot.** During a round's derive phase
//!    nothing mutates the [`RelationStore`] or the [`IndexSpace`]; each work
//!    item derives into a private buffer. This holds in *both* branches of
//!    `run_round`: rounds above the work threshold fan items out across
//!    scoped worker threads, rounds below it run the items on the
//!    coordinator — but even then results are buffered and merged after all
//!    items ran, never inserted eagerly in between. The indexes a stratum's
//!    probes need are brought up to date *once per round* by the coordinator
//!    ([`IndexSpace::extend_slot`] over the stratum's compile-time
//!    `probe_slots`), gated on [`RelationStore::generation`] so a round that
//!    derived nothing triggers no extension pass; the derive phase probes
//!    through the read-only [`IndexSpace::probe_ready`] path.
//!
//! 2. **Merges are ordered, not racy.** After the derive phase (once the
//!    scope joins, in the threaded case), the coordinator inserts the
//!    per-item buffers into the store in *work item order* — rule order
//!    first, then ascending chunk offset within a rule. Insertion order (and
//!    therefore tuple ids, index contents and every downstream iteration
//!    order) depends only on the program, the instance and the thread count
//!    — never on scheduling. Running the same input twice at the same thread
//!    count is bit-for-bit identical;
//!    `crates/path-cqa/tests/parallel_agreement.rs` pins this, and asserts
//!    via [`EvalStats::threaded_rounds`] that its large-delta workloads
//!    really cross the threshold into the threaded branch.
//!
//! Compared to the sequential loop, a snapshot round may *miss* derivations
//! that chain two facts discovered in the same round (the sequential engine
//! inserts eagerly, so a later rule can consume an earlier rule's output
//! immediately). That is harmless: every tuple inserted in round `r` lies in
//! round `r+1`'s delta range, and the stratum has a delta plan for every
//! positive same-stratum literal position, so any such derivation re-fires
//! one round later. Both drivers reach the unique stratum fixpoint; only the
//! round count and insertion order may differ. The differential property
//! suite (`parallel_agreement.rs`) checks set-equality against both the
//! sequential engine and the scan-based reference engine on random programs.
//!
//! Work items split a rule's depth-0 scan range into chunks (the delta
//! literal of a recursive plan, or the leading full scan of a non-recursive
//! one), so even a single-rule stratum — transitive closure, the linear CQA
//! programs of Lemma 14 — parallelizes across its delta.
//!
//! Layered stores ([`crate::store`]) need no extra machinery here: the base
//! layer is frozen (immutable by construction), so the only state a round
//! must hold still is the overlay — exactly what the snapshot invariant
//! already guarantees. Workers share the base through the same `&RelationStore`
//! borrow, and the once-per-round index extension attaches the base's
//! committed indexes through [`IndexSpace::extend_slot`] like any other
//! absorption.

use std::collections::VecDeque;

use crate::engine::{CompiledStratum, Executor, PredId, Probing, RelationStore, Tuple};
use crate::kernel::{KernelExecutor, KernelRule, KernelSpace};
use crate::plan::{CompiledRule, IndexSpace, Op};

/// How many worker threads an evaluation may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Defer to the `PATH_CQA_THREADS` environment variable; when it is
    /// unset (or unparsable) use [`std::thread::available_parallelism`].
    /// This is the default, so a whole test suite or service can be switched
    /// to a given parallelism level without touching call sites — and on a
    /// single-core host everything stays on the exact sequential path.
    #[default]
    Auto,
    /// A fixed number of threads; `1` selects the sequential engine
    /// unchanged (bit-for-bit identical stores).
    Fixed(usize),
}

impl Threads {
    /// The number of worker threads to use, always at least 1.
    ///
    /// `Auto` is resolved once per process (environment lookup plus an
    /// `available_parallelism` syscall are not free, and this sits on the
    /// per-request path of warm certainty sessions); set `PATH_CQA_THREADS`
    /// before the first evaluation.
    pub fn resolve(self) -> usize {
        match self {
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => {
                static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
                *AUTO.get_or_init(|| {
                    std::env::var("PATH_CQA_THREADS")
                        .ok()
                        .and_then(|s| s.parse::<usize>().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| {
                            std::thread::available_parallelism().map_or(1, |n| n.get())
                        })
                })
            }
        }
    }
}

/// Whether eligible rules execute through the shape-specialized kernels of
/// [`crate::kernel`] (columnar scans, CSR probes, bitset membership) instead
/// of the generic tuple executor.
///
/// Kernels are always *compiled* — selection is recorded per rule in the
/// [`crate::engine::CompiledProgram`], so plan caches are oblivious to this
/// knob — and the choice of execution path is made per run, which is what
/// makes runtime bisection of a suspected kernel bug possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernels {
    /// Defer to the `PATH_CQA_KERNELS` environment variable (`off` or `0`
    /// disables; anything else — including unset — enables). Resolved once
    /// per process, like `PATH_CQA_THREADS`.
    #[default]
    Auto,
    /// Force the generic executor for every rule.
    Off,
    /// Use kernels for every eligible rule.
    On,
}

impl Kernels {
    /// True iff eligible rules should take the kernel path.
    pub fn resolve(self) -> bool {
        match self {
            Kernels::On => true,
            Kernels::Off => false,
            Kernels::Auto => {
                static AUTO: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
                *AUTO.get_or_init(|| {
                    !matches!(
                        std::env::var("PATH_CQA_KERNELS").as_deref(),
                        Ok("off") | Ok("0")
                    )
                })
            }
        }
    }
}

/// Whether family evaluation may resume from a checkpointed base — a frozen
/// [`crate::store::BaseStore`] variant whose relations already hold the
/// fixpoint of the program's *checkpointable* strata (monotone, dependent
/// only on the EDB and earlier checkpointable strata), computed once per
/// (base, compiled program) pair.
///
/// Like [`Kernels`], this knob never changes *what* is derived — resumed
/// evaluation reaches the identical fixpoint (pinned by the checkpoint
/// differential suite) — only how much per-request work it takes to get
/// there, which is what makes runtime bisection possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Checkpoint {
    /// Defer to the `PATH_CQA_CHECKPOINT` environment variable (`off` or `0`
    /// disables; anything else — including unset — enables). Resolved once
    /// per process, like `PATH_CQA_THREADS`.
    #[default]
    Auto,
    /// Always evaluate from scratch on the raw base.
    Off,
    /// Resume from the checkpointed base whenever the program has
    /// checkpointable strata.
    On,
}

impl Checkpoint {
    /// True iff evaluation should resume from checkpointed bases.
    pub fn resolve(self) -> bool {
        match self {
            Checkpoint::On => true,
            Checkpoint::Off => false,
            Checkpoint::Auto => {
                static AUTO: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
                *AUTO.get_or_init(|| {
                    !matches!(
                        std::env::var("PATH_CQA_CHECKPOINT").as_deref(),
                        Ok("off") | Ok("0")
                    )
                })
            }
        }
    }
}

/// Whether resident family evaluation may answer from a *maintained*
/// materialized IDB — a flat [`RelationStore`] kept at the program's fixpoint
/// across `APPEND`/`RETRACT` mutations by differential maintenance
/// (counting-based for non-recursive strata, classic DRed
/// overdelete → rederive → re-insert for the rest; see [`crate::maintain`])
/// instead of re-deriving from the base on every request.
///
/// Like [`Checkpoint`], this knob never changes *what* is derived — the
/// maintained store is byte-identical to a from-scratch run (pinned by the
/// checkpoint differential suite across maintain × checkpoint × demand ×
/// kernels × threads) — only how much per-mutation work it takes to stay
/// there. `Auto` additionally falls back to from-scratch re-derivation when
/// the change ratio makes maintenance unprofitable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Maintain {
    /// Defer to the `PATH_CQA_MAINTAIN` environment variable (`off` or `0`
    /// disables; anything else — including unset — enables). Resolved once
    /// per process, like `PATH_CQA_THREADS`.
    #[default]
    Auto,
    /// Never maintain: every request re-derives from the base store.
    Off,
    /// Maintain whenever the solver holds a resident base, even when the
    /// change ratio makes from-scratch re-derivation cheaper.
    On,
}

impl Maintain {
    /// True iff resident evaluation should keep and maintain materialized
    /// IDB state.
    pub fn resolve(self) -> bool {
        match self {
            Maintain::On => true,
            Maintain::Off => false,
            Maintain::Auto => {
                static AUTO: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
                *AUTO.get_or_init(|| {
                    !matches!(
                        std::env::var("PATH_CQA_MAINTAIN").as_deref(),
                        Ok("off") | Ok("0")
                    )
                })
            }
        }
    }

    /// True iff the unprofitable-change fallback applies (only `Auto` falls
    /// back; `On` forces maintenance regardless of the change ratio, which is
    /// what the differential suite uses to keep the maintenance passes
    /// themselves under test).
    pub fn fallback_allowed(self) -> bool {
        !matches!(self, Maintain::On)
    }
}

/// Evaluation options, threaded from the solvers down to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalOptions {
    /// Worker-thread budget for stratum rounds (and, at the solver layer,
    /// for fanning out batched certainty requests).
    pub threads: Threads,
    /// Demand transformation applied at program-generation time (see
    /// [`crate::demand`]): goal-reachability pruning and/or the magic-sets
    /// rewrite. The engine itself never consults this — by the time a plan
    /// is compiled the transformation already happened — but it rides in the
    /// options so solvers and sessions pick it up from one place.
    pub demand: crate::demand::Demand,
    /// Whether eligible rules execute through the specialized kernels of
    /// [`crate::kernel`]; consulted at execution time only (see [`Kernels`]).
    pub kernels: Kernels,
    /// Whether family evaluation resumes from checkpointed bases; consulted
    /// by the solver layer when it holds an `Arc`-shared base (see
    /// [`Checkpoint`]).
    pub checkpoint: Checkpoint,
    /// Whether resident family evaluation answers from a differentially
    /// maintained materialized IDB; consulted by the solver layer when it
    /// holds an `Arc`-shared base and a stable per-request slot (see
    /// [`Maintain`]).
    pub maintain: Maintain,
}

impl EvalOptions {
    /// Options pinning the exact sequential path (`threads = 1`).
    pub fn sequential() -> EvalOptions {
        EvalOptions {
            threads: Threads::Fixed(1),
            ..EvalOptions::default()
        }
    }

    /// Options with a fixed thread count.
    pub fn with_threads(n: usize) -> EvalOptions {
        EvalOptions {
            threads: Threads::Fixed(n),
            ..EvalOptions::default()
        }
    }

    /// These options with an explicit demand setting.
    pub fn with_demand(self, demand: crate::demand::Demand) -> EvalOptions {
        EvalOptions { demand, ..self }
    }

    /// These options with an explicit kernel setting.
    pub fn with_kernels(self, kernels: Kernels) -> EvalOptions {
        EvalOptions { kernels, ..self }
    }

    /// These options with an explicit checkpoint setting.
    pub fn with_checkpoint(self, checkpoint: Checkpoint) -> EvalOptions {
        EvalOptions { checkpoint, ..self }
    }

    /// These options with an explicit maintenance setting.
    pub fn with_maintain(self, maintain: Maintain) -> EvalOptions {
        EvalOptions { maintain, ..self }
    }
}

/// Statistics of one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Resolved worker-thread count the run used.
    pub threads: usize,
    /// Semi-naive rounds executed, summed over strata (the initial
    /// full-plan round of each stratum counts as one).
    pub rounds: u64,
    /// Index-extension passes that actually absorbed tuples. Pinned by a
    /// regression test: an unproductive round must not re-extend (the
    /// store's generation watermark did not move, so nothing can be stale).
    pub index_extensions: u64,
    /// Rounds that actually spawned scoped worker threads (rounds whose
    /// estimated work falls below the inline threshold run on the
    /// coordinator instead). The differential harness asserts this is
    /// nonzero on its large-delta workloads, so the threaded derive/merge
    /// path can never silently fall out of test coverage.
    pub threaded_rounds: u64,
    /// Committed base-layer indexes this run *built* (rather than found
    /// cached on its store's [`crate::store::BaseStore`]). Zero for flat
    /// stores; for a family of runs over one shared base only the first run
    /// reports nonzero — pinned by a regression test, since re-building per
    /// run would silently forfeit the copy-on-write win.
    pub base_index_builds: u64,
    /// Tuples this run actually inserted (EDB-load inserts excluded: the run
    /// measures the store's [`crate::store::RelationStore::generation`]
    /// watermark from entry to exit, and the EDB is loaded before entry).
    /// This is the number demand-driven derivation exists to shrink; the
    /// demand differential suite asserts it strictly drops on goal-sparse
    /// programs.
    pub tuples_derived: u64,
    /// Rules the demand transformation removed from the program this plan
    /// was compiled from. Zero unless the caller stamped it from a
    /// [`crate::demand::DemandReport`] (the engine itself only sees the
    /// already-transformed program).
    pub rules_pruned: u64,
    /// IDB predicates the demand transformation eliminated entirely; same
    /// stamping convention as `rules_pruned`.
    pub predicates_pruned: u64,
    /// Compiled plans (full and delta) this run executed through the
    /// specialized kernels of [`crate::kernel`]. Zero when kernels are
    /// disabled for the run; the kernel differential suite asserts it is
    /// nonzero on the generated (binary-heavy) CQA programs.
    pub kernel_rules: u64,
    /// Compiled plans this run executed through the generic tuple executor
    /// (ineligible rules, or every rule when kernels are disabled).
    pub generic_rules: u64,
    /// Kernel derive calls this run issued (work items on the parallel
    /// driver, rule executions on the sequential one) — the per-run "kernel
    /// hit" count surfaced through session and server stats.
    pub kernel_invocations: u64,
    /// Strata this run resumed from a base checkpoint instead of evaluating
    /// from scratch (their initial full-plan round was replaced by
    /// delta-restricted resume plans over the overlay EDB). Zero when the
    /// run evaluated on a raw base or the checkpoint knob is off; the
    /// checkpoint differential suite asserts resumed and from-scratch runs
    /// agree bit-for-bit regardless.
    pub checkpoint_hits: u64,
    /// Requests answered from a differentially maintained materialized IDB
    /// instead of a from-scratch derivation — both pure hits (the mutation
    /// delta was unchanged since the store was last maintained) and
    /// O(change) maintenance passes count; bootstraps and unprofitable-change
    /// rebuilds do not. Zero when maintenance is off or the solver has no
    /// stable per-request slot.
    pub maintained_hits: u64,
    /// Tuples the maintenance passes physically removed from the maintained
    /// store: DRed overdeletion marks that reached the removal sweep, plus
    /// counting-stratum tuples whose derivation count dropped to zero.
    pub tuples_overdeleted: u64,
    /// Tuples the DRed rederivation phase re-inserted after overdeletion
    /// (alternative derivations survived the deleted support).
    pub tuples_rederived: u64,
    /// Wall-clock nanoseconds spent evaluating strata (semi-naive rounds,
    /// both drivers), summed over the run. For maintained answers this is
    /// the repair pass duration instead. Always-on: the timer wraps whole
    /// strata, not rounds, so its cost is noise next to one fixpoint.
    pub eval_ns: u64,
    /// Wall-clock nanoseconds spent building or extending per-run index
    /// structures (committed base index/CSR attach + builds, overlay
    /// absorption). A subset of `eval_ns` — timed only in the slow branches
    /// of the index space, never on the per-probe fast path.
    pub index_build_ns: u64,
}

impl EvalStats {
    pub(crate) fn new(threads: usize) -> EvalStats {
        EvalStats {
            threads,
            ..EvalStats::default()
        }
    }
}

/// One unit of round work: a plan plus an optional depth-0 scan range
/// (a chunk of the delta range, or of a leading full scan), and the rule's
/// kernel when this round executes it through the specialized path.
struct Item<'a> {
    plan: &'a CompiledRule,
    kernel: Option<&'a KernelRule>,
    range: Option<(usize, usize)>,
}

/// Per-worker state, persistent across rounds and strata so executor scratch
/// (binding arrays, probe-id buffers) is reused instead of reallocated.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
}

struct Worker {
    executor: Executor,
    kexec: KernelExecutor,
    /// `(item index, derived tuples)` pairs produced during the round.
    results: Vec<(usize, Vec<Tuple>)>,
    /// Recycled tuple buffers, refilled from `results` after every merge.
    spare: VecDeque<Vec<Tuple>>,
}

impl Worker {
    /// Derives one item into `out` through the item's chosen path.
    fn derive_item(
        &mut self,
        item: &Item<'_>,
        pred_map: &[PredId],
        store: &RelationStore,
        indexes: &IndexSpace,
        kernels: &KernelSpace,
        out: &mut Vec<Tuple>,
    ) {
        match item.kernel {
            Some(kernel) => self
                .kexec
                .derive(kernel, pred_map, store, kernels, item.range, out),
            None => self.executor.derive(
                item.plan,
                pred_map,
                store,
                &mut Probing::Ready(indexes),
                item.range,
                out,
            ),
        }
    }
}

impl WorkerPool {
    pub(crate) fn new(threads: usize) -> WorkerPool {
        let mut workers = Vec::with_capacity(threads);
        workers.resize_with(threads, || Worker {
            executor: Executor::default(),
            kexec: KernelExecutor::default(),
            results: Vec::new(),
            spare: VecDeque::new(),
        });
        WorkerPool { workers }
    }
}

/// Minimum scan-chunk size: below this, per-item overhead (buffer churn,
/// merge bookkeeping) outweighs any parallel win, so small deltas stay in
/// one item.
const MIN_CHUNK: usize = 256;

/// Splits a depth-0 scan range into at most `workers * 4` chunks of at least
/// [`MIN_CHUNK`] tuples, pushing one work item per chunk.
fn push_chunked<'a>(
    items: &mut Vec<Item<'a>>,
    plan: &'a CompiledRule,
    kernel: Option<&'a KernelRule>,
    lo: usize,
    hi: usize,
    workers: usize,
) {
    let len = hi - lo;
    if len == 0 {
        return;
    }
    let chunks = len.div_ceil(MIN_CHUNK).clamp(1, workers * 4);
    let chunk = len.div_ceil(chunks);
    let mut start = lo;
    while start < hi {
        let end = (start + chunk).min(hi);
        items.push(Item {
            plan,
            kernel,
            range: Some((start, end)),
        });
        start = end;
    }
}

/// Pushes the work items of one plan: chunked over the depth-0 scan range if
/// the plan opens with a scan, a single unchunked item otherwise.
fn push_plan_items<'a>(
    items: &mut Vec<Item<'a>>,
    plan: &'a CompiledRule,
    kernel: Option<&'a KernelRule>,
    delta: Option<(usize, usize)>,
    pred_map: &[PredId],
    store: &RelationStore,
    workers: usize,
) {
    match plan.ops.first() {
        Some(Op::Scan(ap)) => {
            let (lo, hi) =
                delta.unwrap_or_else(|| (0, store.tuples_by_id(pred_map[ap.pred.index()]).len()));
            push_chunked(items, plan, kernel, lo, hi, workers);
        }
        // No leading scan (constant-bound probe/exists, or an empty body):
        // the plan is one indivisible item. A delta range never lands here —
        // delta literals always compile to a leading scan.
        _ => items.push(Item {
            plan,
            kernel,
            range: delta,
        }),
    }
}

/// Runs one round's items across the pool and merges the derived tuples into
/// the store in item order (the deterministic-merge invariant).
///
/// Both branches follow the same two-phase protocol — derive every item
/// against the frozen store, *then* merge — so the snapshot invariant of the
/// module docs holds whether or not threads are spawned.
fn run_round(
    items: &[Item<'_>],
    pred_map: &[PredId],
    store: &mut RelationStore,
    indexes: &IndexSpace,
    kernels: &KernelSpace,
    pool: &mut WorkerPool,
    stats: &mut EvalStats,
) {
    stats.kernel_invocations += items.iter().filter(|item| item.kernel.is_some()).count() as u64;
    // Estimated round size: scan-range lengths, with unchunkable items
    // charged a full chunk. Small rounds — the long tail of a fixpoint,
    // where deltas shrink to a handful of tuples — run on the coordinator:
    // spawning scoped threads costs more than the work itself, and
    // `WorkerPool` persists scratch only, not parked threads (a future
    // optimization noted in the ROADMAP). The threshold depends only on the
    // items, so determinism at a fixed thread count is unaffected.
    let work: usize = items
        .iter()
        .map(|item| item.range.map_or(MIN_CHUNK, |(lo, hi)| hi - lo))
        .sum();
    let mut active = pool.workers.len().min(items.len());
    if active <= 1 || work < 2 * MIN_CHUNK {
        // Derive phase on the coordinator, same frozen-store reads as the
        // threaded branch (results buffered, merged below — never inserted
        // eagerly between items).
        active = 1;
        let worker = &mut pool.workers[0];
        worker.results.clear();
        for (i, item) in items.iter().enumerate() {
            let mut out = worker.spare.pop_front().unwrap_or_default();
            out.clear();
            worker.derive_item(item, pred_map, store, indexes, kernels, &mut out);
            if out.is_empty() {
                worker.spare.push_back(out);
            } else {
                worker.results.push((i, out));
            }
        }
    } else {
        stats.threaded_rounds += 1;
        let shared_store: &RelationStore = store;
        std::thread::scope(|scope| {
            for (w, worker) in pool.workers.iter_mut().enumerate().take(active) {
                worker.results.clear();
                scope.spawn(move || {
                    // Round-robin assignment: worker `w` takes items w, w+n, ...
                    for (i, item) in items.iter().enumerate().filter(|(i, _)| i % active == w) {
                        let mut out = worker.spare.pop_front().unwrap_or_default();
                        out.clear();
                        worker.derive_item(
                            item,
                            pred_map,
                            shared_store,
                            indexes,
                            kernels,
                            &mut out,
                        );
                        if out.is_empty() {
                            worker.spare.push_back(out);
                        } else {
                            worker.results.push((i, out));
                        }
                    }
                });
            }
        });
    }

    // Deterministic merge: item order, independent of which worker finished
    // first (buffers are tagged with their item index, so this is a plain
    // sort — thread scheduling cannot influence it).
    let mut merged: Vec<(usize, usize, Vec<Tuple>)> = Vec::new();
    for (w, worker) in pool.workers.iter_mut().enumerate().take(active) {
        for (i, out) in worker.results.drain(..) {
            merged.push((i, w, out));
        }
    }
    merged.sort_unstable_by_key(|&(i, _, _)| i);
    for (i, w, mut out) in merged {
        let head = pred_map[items[i].plan.head_pred.index()];
        for tuple in out.drain(..) {
            store.insert_by_id(head, tuple);
        }
        pool.workers[w].spare.push_back(out);
    }
}

/// Picks a rule's kernel iff this run executes kernels at all.
fn kernel_of(use_kernels: bool, slot: &Option<KernelRule>) -> Option<&KernelRule> {
    if use_kernels {
        slot.as_ref()
    } else {
        None
    }
}

/// Parallel semi-naive evaluation of one stratum: snapshot rounds across the
/// worker pool, with the per-round index-extension and deterministic-merge
/// protocol described in the module docs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_stratum_parallel(
    stratum: &CompiledStratum,
    pred_map: &[PredId],
    store: &mut RelationStore,
    indexes: &mut IndexSpace,
    kspace: &mut KernelSpace,
    use_kernels: bool,
    resume: bool,
    pool: &mut WorkerPool,
    stats: &mut EvalStats,
) {
    let workers = pool.workers.len();
    let watermark = |store: &RelationStore| -> Vec<usize> {
        stratum
            .preds
            .iter()
            .map(|&p| store.len_of(pred_map[p.index()]))
            .collect()
    };
    // Brings the probe structures the round will actually read up to date
    // with the store — the hash indexes of slots some *generic* plan probes
    // (all slots when kernels are off), plus the CSR adjacencies of the
    // stratum's kernels — skipped entirely when the generation watermark
    // proves nothing has grown since the previous pass. This is the
    // once-per-round update; the rest of the round treats both structures as
    // read-only. Extending only the generically probed hash slots matters:
    // re-extending indexes that exist purely for kernel-executed rules would
    // pay the hash-build cost the kernels are there to avoid.
    let mut extended_at: Option<u64> = None;
    macro_rules! extend_indexes {
        () => {
            if extended_at != Some(store.generation()) {
                let hash_slots = if use_kernels {
                    &stratum.generic_probe_slots
                } else {
                    &stratum.probe_slots
                };
                for ps in hash_slots {
                    indexes.extend_slot(ps.slot, store, pred_map[ps.pred.index()], ps.mask);
                }
                if use_kernels {
                    for &spec in &stratum.csr_slots {
                        kspace.prepare(spec, pred_map, store);
                    }
                }
                extended_at = Some(store.generation());
            }
        };
    }

    let mut low = watermark(store);
    let mut items: Vec<Item<'_>> = Vec::new();

    stats.rounds += 1;
    extend_indexes!();
    if resume && stratum.checkpointable {
        // Resume round: the base already holds this stratum's checkpoint
        // fixpoint, so instead of the full-plan round each resume plan fires
        // only over the overlay segment of its chosen non-same-stratum body
        // literal (the EDB delta, or tuples a lower checkpointable stratum
        // derived earlier in this resumed run). Same-stratum consequences are
        // then closed by the ordinary delta loop below — `low` was taken
        // before this round, so everything the resume round inserts lands in
        // the first delta range.
        stats.checkpoint_hits += 1;
        // Resume plans probe read-only (`Probing::Ready`), and their slots
        // may be absent from the per-round extension lists above (those only
        // cover full/delta plans) — bring them up to date here, once.
        for ps in &stratum.resume_probe_slots {
            indexes.extend_slot(ps.slot, store, pred_map[ps.pred.index()], ps.mask);
        }
        for (pred, plan) in &stratum.resume_plans {
            let tuples = store.tuples_by_id(pred_map[pred.index()]);
            let (lo, hi) = (tuples.base_len(), tuples.len());
            if lo == hi {
                continue;
            }
            push_chunked(&mut items, plan, None, lo, hi, workers);
        }
    } else {
        // Initial round: every full plan against the snapshot, leading scans
        // chunked.
        for (plan, kernel) in stratum.full_plans.iter().zip(&stratum.full_kernels) {
            push_plan_items(
                &mut items,
                plan,
                kernel_of(use_kernels, kernel),
                None,
                pred_map,
                store,
                workers,
            );
        }
    }
    run_round(&items, pred_map, store, indexes, kspace, pool, stats);

    if stratum.delta_plans.is_empty() {
        return;
    }

    // Delta rounds, until a round derives nothing. The termination check
    // runs *before* the extension pass, so the final (empty) iteration costs
    // neither an extension nor a scope.
    loop {
        let high = watermark(store);
        if high == low {
            break;
        }
        stats.rounds += 1;
        extend_indexes!();
        items.clear();
        for ((delta_idx, plan), kernel) in stratum.delta_plans.iter().zip(&stratum.delta_kernels) {
            let (lo, hi) = (low[*delta_idx], high[*delta_idx]);
            if lo == hi {
                continue;
            }
            push_chunked(
                &mut items,
                plan,
                kernel_of(use_kernels, kernel),
                lo,
                hi,
                workers,
            );
        }
        run_round(&items, pred_map, store, indexes, kspace, pool, stats);
        low = high;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BodyLiteral, DlAtom, DlTerm, Predicate, Program, Rule};
    use crate::engine::CompiledProgram;
    use cqa_db::instance::DatabaseInstance;

    fn atom(name: &str, vars: &[&str]) -> DlAtom {
        DlAtom::new(
            Predicate::new(name, vars.len()),
            vars.iter().map(|v| DlTerm::var(v)).collect(),
        )
    }

    /// Nonlinear transitive closure: both body literals are recursive, so
    /// every productive round must extend both `(path, mask)` index slots.
    fn nonlinear_tc() -> Program {
        let mut p = Program::new();
        p.declare_edb(Predicate::new("E", 2));
        p.add_rule(Rule::new(
            atom("path", &["X", "Y"]),
            vec![BodyLiteral::Positive(atom("E", &["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![
                BodyLiteral::Positive(atom("path", &["X", "Y"])),
                BodyLiteral::Positive(atom("path", &["Y", "Z"])),
            ],
        ));
        p
    }

    fn chain_db(n: usize) -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        for i in 0..n {
            db.insert_parsed("E", &format!("n{i}"), &format!("n{}", i + 1));
        }
        db
    }

    #[test]
    fn threads_resolution_clamps_and_reads_fixed() {
        assert_eq!(Threads::Fixed(0).resolve(), 1);
        assert_eq!(Threads::Fixed(4).resolve(), 4);
        assert_eq!(EvalOptions::sequential().threads.resolve(), 1);
        assert_eq!(EvalOptions::with_threads(8).threads.resolve(), 8);
        assert!(Threads::Auto.resolve() >= 1);
    }

    #[test]
    fn unproductive_rounds_do_not_re_extend_indexes() {
        // Chain n0..n3: the closure finishes deriving in round 3, and the
        // fourth round (delta = the single length-3 path) derives nothing
        // new. Watermark accounting must charge index-extension passes only
        // to rounds after which the store actually grew:
        //
        //   round 1 (full plans):  path is empty, no slot absorbs    -> +0
        //   round 2 (delta 0..3):  path@3, both (path, mask) slots   -> +2
        //   round 3 (delta 3..5):  path@5, both slots                -> +2
        //   round 4 (delta 5..6):  path@6, both slots                -> +2
        //   termination check:     store unchanged, NO pass          -> +0
        //
        // A regressed driver that extends before checking termination (or
        // that bumps versions on unproductive rounds) reports 8 here.
        let compiled = CompiledProgram::compile(&nonlinear_tc()).unwrap();
        let store = crate::engine::edb_from_instance(&chain_db(3));
        let (result, stats) =
            compiled.run_on_store_with_stats(store, &EvalOptions::with_threads(2));
        assert_eq!(result.len(Predicate::new("path", 2)), 6);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.rounds, 4);
        assert_eq!(stats.index_extensions, 6);
    }

    #[test]
    fn sequential_and_parallel_runs_report_stats() {
        let compiled = CompiledProgram::compile(&nonlinear_tc()).unwrap();
        let db = chain_db(4);
        let (seq_store, seq_stats) = compiled.run_on_store_with_stats(
            crate::engine::edb_from_instance(&db),
            &EvalOptions::sequential(),
        );
        let (par_store, par_stats) = compiled.run_on_store_with_stats(
            crate::engine::edb_from_instance(&db),
            &EvalOptions::with_threads(4),
        );
        assert_eq!(seq_stats.threads, 1);
        assert_eq!(par_stats.threads, 4);
        assert!(seq_stats.rounds >= 2);
        assert!(par_stats.rounds >= 2);
        assert_eq!(seq_store, par_store);
    }

    #[test]
    fn store_generation_counts_only_new_tuples() {
        let mut store = RelationStore::new();
        let p = Predicate::new("p", 1);
        assert_eq!(store.generation(), 0);
        assert!(store.insert(p, [cqa_core::symbol::Symbol::new("a")]));
        assert!(!store.insert(p, [cqa_core::symbol::Symbol::new("a")]));
        assert!(store.insert(p, [cqa_core::symbol::Symbol::new("b")]));
        assert_eq!(store.generation(), 2);
    }

    #[test]
    fn chunking_respects_min_chunk_and_worker_cap() {
        let rule = Rule::new(
            atom("h", &["X", "Y"]),
            vec![BodyLiteral::Positive(atom("E", &["X", "Y"]))],
        );
        let vars = rule.numbering();
        let mut preds = crate::engine::PredTable::default();
        let mut islots = crate::plan::IndexSlots::default();
        let plan = crate::plan::compile_rule(&rule, &vars, None, &mut preds, &mut islots);

        // Tiny range: one item, never split below MIN_CHUNK.
        let mut items = Vec::new();
        push_chunked(&mut items, &plan, None, 0, 100, 8);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].range, Some((0, 100)));

        // Large range: capped at workers * 4 chunks, covering exactly.
        let mut items = Vec::new();
        push_chunked(&mut items, &plan, None, 0, 1_000_000, 4);
        assert_eq!(items.len(), 16);
        assert_eq!(items[0].range.unwrap().0, 0);
        assert_eq!(items.last().unwrap().range.unwrap().1, 1_000_000);
        for pair in items.windows(2) {
            assert_eq!(pair[0].range.unwrap().1, pair[1].range.unwrap().0);
        }

        // Empty range: no items at all.
        let mut items = Vec::new();
        push_chunked(&mut items, &plan, None, 7, 7, 4);
        assert!(items.is_empty());
    }
}
