//! Abstract syntax for Datalog with stratified negation and a small set of
//! built-in predicates.

use std::fmt;

use cqa_core::symbol::Symbol;

/// A predicate symbol with a fixed arity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate {
    /// The predicate name.
    pub name: Symbol,
    /// The arity.
    pub arity: usize,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(name: &str, arity: usize) -> Predicate {
        Predicate {
            name: Symbol::new(name),
            arity,
        }
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DlTerm {
    /// A variable, identified by name.
    Var(Symbol),
    /// A constant.
    Const(Symbol),
}

impl DlTerm {
    /// A variable term.
    pub fn var(name: &str) -> DlTerm {
        DlTerm::Var(Symbol::new(name))
    }

    /// A constant term.
    pub fn constant(name: &str) -> DlTerm {
        DlTerm::Const(Symbol::new(name))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            DlTerm::Var(v) => Some(*v),
            DlTerm::Const(_) => None,
        }
    }
}

impl fmt::Debug for DlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlTerm::Var(v) => write!(f, "{v}"),
            DlTerm::Const(c) => write!(f, "'{c}'"),
        }
    }
}

impl fmt::Display for DlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An atom `p(t1, …, tn)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DlAtom {
    /// The predicate.
    pub pred: Predicate,
    /// The argument terms (length = arity).
    pub args: Vec<DlTerm>,
}

impl DlAtom {
    /// Creates an atom, checking the arity.
    pub fn new(pred: Predicate, args: Vec<DlTerm>) -> DlAtom {
        assert_eq!(pred.arity, args.len(), "arity mismatch for {pred}");
        DlAtom { pred, args }
    }
}

impl fmt::Display for DlAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// Built-in predicates evaluated over bound arguments.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// `t1 != t2`.
    Neq(DlTerm, DlTerm),
    /// `t1 = t2`.
    Eq(DlTerm, DlTerm),
    /// `KeyConsistent(x1, y1, x2, y2)`: true iff `x1 != x2 ∨ y1 = y2`,
    /// i.e. the facts `R(x1, y1)` and `R(x2, y2)` are not two distinct
    /// key-equal facts. This is the `consistent/4` predicate of Section 6.3.
    KeyConsistent(DlTerm, DlTerm, DlTerm, DlTerm),
}

impl Builtin {
    /// The terms of the builtin.
    pub fn terms(&self) -> Vec<DlTerm> {
        match self {
            Builtin::Neq(a, b) | Builtin::Eq(a, b) => vec![*a, *b],
            Builtin::KeyConsistent(a, b, c, d) => vec![*a, *b, *c, *d],
        }
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Builtin::Neq(a, b) => write!(f, "{a} != {b}"),
            Builtin::Eq(a, b) => write!(f, "{a} = {b}"),
            Builtin::KeyConsistent(a, b, c, d) => write!(f, "consistent({a}, {b}, {c}, {d})"),
        }
    }
}

/// A literal in a rule body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BodyLiteral {
    /// A positive atom.
    Positive(DlAtom),
    /// A negated atom (stratified negation).
    Negative(DlAtom),
    /// A built-in constraint.
    Builtin(Builtin),
}

impl BodyLiteral {
    /// The variables occurring in the literal.
    pub fn vars(&self) -> Vec<Symbol> {
        match self {
            BodyLiteral::Positive(a) | BodyLiteral::Negative(a) => {
                a.args.iter().filter_map(DlTerm::as_var).collect()
            }
            BodyLiteral::Builtin(b) => b.terms().iter().filter_map(DlTerm::as_var).collect(),
        }
    }
}

impl fmt::Display for BodyLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyLiteral::Positive(a) => write!(f, "{a}"),
            BodyLiteral::Negative(a) => write!(f, "not {a}"),
            BodyLiteral::Builtin(b) => write!(f, "{b}"),
        }
    }
}

/// A rule `head :- body`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// The head atom.
    pub head: DlAtom,
    /// The body literals.
    pub body: Vec<BodyLiteral>,
}

impl Rule {
    /// Creates a rule.
    pub fn new(head: DlAtom, body: Vec<BodyLiteral>) -> Rule {
        Rule { head, body }
    }

    /// True iff the rule is *safe*: every head variable and every variable of
    /// a negative or built-in literal occurs in some positive body literal.
    pub fn is_safe(&self) -> bool {
        let positive_vars: std::collections::BTreeSet<Symbol> = self
            .body
            .iter()
            .filter_map(|l| match l {
                BodyLiteral::Positive(a) => Some(a.args.iter().filter_map(DlTerm::as_var)),
                _ => None,
            })
            .flatten()
            .collect();
        let head_ok = self
            .head
            .args
            .iter()
            .filter_map(DlTerm::as_var)
            .all(|v| positive_vars.contains(&v));
        let body_ok = self.body.iter().all(|l| match l {
            BodyLiteral::Positive(_) => true,
            _ => l.vars().iter().all(|v| positive_vars.contains(v)),
        });
        head_ok && body_ok
    }
}

/// A dense numbering of a rule's variables.
///
/// Variables are assigned consecutive ids `0..count()` in first-occurrence
/// order over the body (positive literals first, in body order, then negative
/// and built-in literals) and finally the head. The engine's join planner
/// uses the ids to replace name-keyed binding maps with a flat array indexed
/// by variable id, so resolving a binding is a vector index instead of a map
/// lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleVars {
    order: Vec<Symbol>,
}

impl RuleVars {
    /// Numbers the variables of a rule.
    pub fn of(rule: &Rule) -> RuleVars {
        let mut order: Vec<Symbol> = Vec::new();
        let mut note = |term: &DlTerm| {
            if let DlTerm::Var(v) = term {
                if !order.contains(v) {
                    order.push(*v);
                }
            }
        };
        for literal in &rule.body {
            if let BodyLiteral::Positive(atom) = literal {
                atom.args.iter().for_each(&mut note);
            }
        }
        for literal in &rule.body {
            match literal {
                BodyLiteral::Positive(_) => {}
                BodyLiteral::Negative(atom) => atom.args.iter().for_each(&mut note),
                BodyLiteral::Builtin(b) => b.terms().iter().for_each(&mut note),
            }
        }
        rule.head.args.iter().for_each(&mut note);
        RuleVars { order }
    }

    /// The id of a variable, if it occurs in the rule.
    pub fn id(&self, var: Symbol) -> Option<u32> {
        // Rules are tiny (≤ ~12 variables); a linear scan over interned
        // handles beats hashing.
        self.order.iter().position(|&v| v == var).map(|i| i as u32)
    }

    /// Number of distinct variables.
    pub fn count(&self) -> usize {
        self.order.len()
    }

    /// The variable with the given id.
    pub fn name(&self, id: u32) -> Symbol {
        self.order[id as usize]
    }
}

impl Rule {
    /// Numbers this rule's variables (see [`RuleVars`]).
    pub fn numbering(&self) -> RuleVars {
        RuleVars::of(self)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        if self.body.is_empty() {
            return f.write_str("true.");
        }
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{l}")?;
        }
        f.write_str(".")
    }
}

/// A Datalog program: a list of rules plus the set of EDB predicates.
///
/// Programs have structural identity (`Eq` + `Hash` over rules and EDB
/// declarations), which is what [`crate::plan_cache::PlanCache`] keys
/// compiled plans by.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
    /// Predicates supplied by the database (extensional).
    pub edb: Vec<Predicate>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Declares an EDB predicate.
    pub fn declare_edb(&mut self, pred: Predicate) {
        if !self.edb.contains(&pred) {
            self.edb.push(pred);
        }
    }

    /// The intensional (derived) predicates: every head predicate.
    pub fn idb_predicates(&self) -> Vec<Predicate> {
        let mut preds: Vec<Predicate> = self.rules.iter().map(|r| r.head.pred).collect();
        preds.sort_unstable();
        preds.dedup();
        preds
    }

    /// True iff every rule is safe.
    pub fn is_safe(&self) -> bool {
        self.rules.iter().all(Rule::is_safe)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> Predicate {
        Predicate::new("edge", 2)
    }

    fn path() -> Predicate {
        Predicate::new("path", 2)
    }

    #[test]
    fn atoms_check_arity() {
        let a = DlAtom::new(edge(), vec![DlTerm::var("X"), DlTerm::var("Y")]);
        assert_eq!(a.to_string(), "edge(X, Y)");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        DlAtom::new(edge(), vec![DlTerm::var("X")]);
    }

    #[test]
    fn safety_check() {
        // path(X, Y) :- edge(X, Y). — safe.
        let safe = Rule::new(
            DlAtom::new(path(), vec![DlTerm::var("X"), DlTerm::var("Y")]),
            vec![BodyLiteral::Positive(DlAtom::new(
                edge(),
                vec![DlTerm::var("X"), DlTerm::var("Y")],
            ))],
        );
        assert!(safe.is_safe());
        // path(X, Z) :- edge(X, Y). — unsafe (Z unbound).
        let unsafe_rule = Rule::new(
            DlAtom::new(path(), vec![DlTerm::var("X"), DlTerm::var("Z")]),
            vec![BodyLiteral::Positive(DlAtom::new(
                edge(),
                vec![DlTerm::var("X"), DlTerm::var("Y")],
            ))],
        );
        assert!(!unsafe_rule.is_safe());
        // p(X) :- edge(X, Y), not path(X, Z). — unsafe (Z only under negation).
        let unsafe_neg = Rule::new(
            DlAtom::new(Predicate::new("p", 1), vec![DlTerm::var("X")]),
            vec![
                BodyLiteral::Positive(DlAtom::new(
                    edge(),
                    vec![DlTerm::var("X"), DlTerm::var("Y")],
                )),
                BodyLiteral::Negative(DlAtom::new(
                    path(),
                    vec![DlTerm::var("X"), DlTerm::var("Z")],
                )),
            ],
        );
        assert!(!unsafe_neg.is_safe());
    }

    #[test]
    fn display_formats_rules() {
        let rule = Rule::new(
            DlAtom::new(path(), vec![DlTerm::var("X"), DlTerm::var("Y")]),
            vec![
                BodyLiteral::Positive(DlAtom::new(
                    edge(),
                    vec![DlTerm::var("X"), DlTerm::var("Y")],
                )),
                BodyLiteral::Builtin(Builtin::Neq(DlTerm::var("X"), DlTerm::var("Y"))),
            ],
        );
        assert_eq!(rule.to_string(), "path(X, Y) :- edge(X, Y), X != Y.");
    }

    #[test]
    fn program_tracks_idb_and_edb() {
        let mut program = Program::new();
        program.declare_edb(edge());
        program.declare_edb(edge());
        program.add_rule(Rule::new(
            DlAtom::new(path(), vec![DlTerm::var("X"), DlTerm::var("Y")]),
            vec![BodyLiteral::Positive(DlAtom::new(
                edge(),
                vec![DlTerm::var("X"), DlTerm::var("Y")],
            ))],
        ));
        assert_eq!(program.edb.len(), 1);
        assert_eq!(program.idb_predicates(), vec![path()]);
        assert!(program.is_safe());
    }
}
