//! Relation storage for the engine: interned predicate tables and **layered
//! copy-on-write relation stores**.
//!
//! # Store layering
//!
//! A [`RelationStore`] is either *flat* (the classic single-layer store: one
//! append-only tuple vector plus a membership set per predicate) or an
//! *overlay* over a frozen, `Arc`-shared [`BaseStore`]:
//!
//! * the **base** holds the tuples of a shared EDB prefix, loaded and frozen
//!   once ([`edb_base_from_instance`]), together with its *committed*
//!   `(predicate, bound-mask)` hash indexes — built lazily at most once per
//!   base and then shared read-only by every run over it;
//! * the **overlay** holds only what one run adds on top: per-request delta
//!   facts ([`edb_overlay_on`]) and everything the engine derives. Forking an
//!   overlay is O(number of predicates), not O(database).
//!
//! Tuple ids — the currency of the engine's indexes and semi-naive delta
//! ranges — are positions in the *concatenation* base-then-overlay, exposed
//! as the two-segment [`Tuples`] view. A flat store is simply the
//! empty-base case: every view degenerates to plain slice access, so the
//! single-layer engine paths are unchanged (and `threads = 1` evaluation
//! stays bit-identical to the pre-layering engine).
//!
//! Duplicate suppression spans layers: inserting a tuple the base already
//! holds is a no-op, so `base ∪ overlay` is a genuine set and
//! [`RelationStore::len_of`] is its cardinality. The generation watermark of
//! an overlay starts at the base's, keeping the "has anything grown?"
//! comparisons of the evaluation drivers monotone across the seam.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cqa_core::symbol::Symbol;
use cqa_db::instance::DatabaseInstance;

use crate::ast::Predicate;
use crate::engine::EngineError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::tuple::Tuple;

/// A dense predicate id, assigned by a [`PredTable`] in interning order.
///
/// Ids are scoped to the table that produced them: a
/// [`crate::engine::CompiledProgram`] and a [`RelationStore`] each intern
/// independently, and the evaluator translates between the two with a
/// per-run array. An overlay store *clones* its base's table, so base ids
/// remain valid store ids in every fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub(crate) u32);

impl PredId {
    /// The id as a dense vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interner of [`Predicate`]s into dense [`PredId`]s.
#[derive(Debug, Clone, Default)]
pub struct PredTable {
    ids: HashMap<Predicate, PredId>,
    preds: Vec<Predicate>,
}

impl PredTable {
    /// Interns a predicate, assigning the next dense id on first sight.
    pub(crate) fn intern(&mut self, pred: Predicate) -> PredId {
        if let Some(&id) = self.ids.get(&pred) {
            return id;
        }
        let id = PredId(self.preds.len() as u32);
        self.preds.push(pred);
        self.ids.insert(pred, id);
        id
    }

    /// The id of a predicate, if it has been interned.
    pub fn lookup(&self, pred: Predicate) -> Option<PredId> {
        self.ids.get(&pred).copied()
    }

    /// The predicate with the given id.
    pub fn predicate(&self, id: PredId) -> Predicate {
        self.preds[id.index()]
    }

    /// Number of interned predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Iterates over `(id, predicate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PredId, Predicate)> + '_ {
        self.preds
            .iter()
            .enumerate()
            .map(|(i, &p)| (PredId(i as u32), p))
    }
}

/// One predicate's tuples: a dense append-only vector (indexes and deltas
/// address tuples by position in it) plus a hash set for O(1) membership.
#[derive(Debug, Clone, Default)]
struct Relation {
    tuples: Vec<Tuple>,
    set: FxHashSet<Tuple>,
}

impl Relation {
    fn insert(&mut self, tuple: Tuple) -> bool {
        // Single hash lookup; the clone is an inline copy for the arity ≤ 4
        // tuples this workload uses.
        if self.set.insert(tuple.clone()) {
            self.tuples.push(tuple);
            true
        } else {
            false
        }
    }
}

/// Projects `tuple` onto the positions of `mask` into `proj` (cleared
/// first). Committed base indexes and per-run overlay extensions share this
/// helper so both sides of a layered probe agree on the key shape.
///
/// The mask is a `u32`, so positions ≥ 32 (never seen in practice) are not
/// part of any probe key; the planner falls back to per-candidate checks for
/// them.
#[inline]
pub(crate) fn project_onto_mask(tuple: &Tuple, mask: u32, proj: &mut Tuple) {
    proj.clear();
    for pos in 0..tuple.len().min(32) {
        if mask & (1 << pos) != 0 {
            proj.push(tuple[pos]);
        }
    }
}

/// A committed hash index over one base relation for a `(predicate,
/// bound-mask)` pair: the projection of each base tuple onto the mask's
/// positions, mapped to the ascending ids of matching tuples. Built at most
/// once per [`BaseStore`] and then shared read-only (behind an `Arc`) by
/// every overlay run's [`crate::plan::IndexSpace`] slot that probes it.
#[derive(Debug, Default)]
pub(crate) struct BaseIndex {
    pub(crate) entries: FxHashMap<Tuple, Vec<u32>>,
}

impl BaseIndex {
    fn build(tuples: &[Tuple], mask: u32) -> BaseIndex {
        let mut entries: FxHashMap<Tuple, Vec<u32>> = FxHashMap::default();
        let mut proj = Tuple::new();
        for (id, tuple) in tuples.iter().enumerate() {
            project_onto_mask(tuple, mask, &mut proj);
            entries.entry(proj.clone()).or_default().push(id as u32);
        }
        BaseIndex { entries }
    }
}

/// A frozen relation store, shared via `Arc` as the common bottom layer of
/// many overlay [`RelationStore`]s.
///
/// Freezing a flat store ([`BaseStore::freeze`]) makes its tuples immutable,
/// which buys two amortizations for family workloads (many runs extending
/// one shared EDB prefix):
///
/// * the prefix's tuples are loaded and deduplicated **once**, and every
///   fork ([`RelationStore::overlay_on`]) is O(number of predicates);
/// * the `(predicate, bound-mask)` indexes the runs probe are built **once**
///   per base ([`BaseStore`] caches them by `(pred, mask)`) instead of once
///   per run — [`crate::parallel::EvalStats::base_index_builds`] counts the
///   builds, and a regression test pins "once per family".
///
/// A base store is immutable except for its index cache, which is an
/// interior-mutability memo (a mutex is fine: each entry is built at most
/// once, after which every access is a clone of an `Arc`).
#[derive(Debug)]
pub struct BaseStore {
    preds: PredTable,
    relations: Vec<Relation>,
    generation: u64,
    /// Committed indexes, keyed by `(pred id, mask)`. Built under the lock,
    /// so concurrent first probes of one `(pred, mask)` still build exactly
    /// once (the loser of the race finds the entry).
    indexes: Mutex<HashMap<(u32, u32), Arc<BaseIndex>>>,
    /// Number of committed indexes actually built (cache misses).
    index_builds: AtomicU64,
}

impl BaseStore {
    /// Freezes a flat store into a shareable base layer.
    ///
    /// # Panics
    ///
    /// Panics if `store` is itself an overlay; freeze the flat store the
    /// overlay was forked from instead (re-freezing derived overlays is not
    /// a supported way to stack layers).
    pub fn freeze(store: RelationStore) -> Arc<BaseStore> {
        assert!(
            store.base.is_none(),
            "BaseStore::freeze expects a flat store, not an overlay"
        );
        Arc::new(BaseStore {
            preds: store.preds,
            relations: store.relations,
            generation: store.generation,
            indexes: Mutex::new(HashMap::new()),
            index_builds: AtomicU64::new(0),
        })
    }

    /// The base's insertion watermark (the overlay forks start from it).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of committed `(pred, mask)` indexes built so far. For a family
    /// of runs over one base this stops growing after the first run — the
    /// whole point of sharing the base.
    pub fn index_builds(&self) -> u64 {
        self.index_builds.load(Ordering::Relaxed)
    }

    /// The committed index for `(id, mask)`, building it on first request;
    /// the flag reports whether this call built it.
    pub(crate) fn committed_index(&self, id: PredId, mask: u32) -> (Arc<BaseIndex>, bool) {
        let mut cache = self.indexes.lock().expect("base index cache poisoned");
        match cache.entry((id.0, mask)) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let built = Arc::new(BaseIndex::build(&self.relations[id.index()].tuples, mask));
                self.index_builds.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(e.insert(built)), true)
            }
        }
    }
}

/// The tuples of one predicate as a two-segment view: the frozen base
/// layer's slice followed by the overlay's. Tuple ids — the positions the
/// engine's indexes and semi-naive delta ranges speak — index the
/// concatenation. A flat store has an empty base segment, so every accessor
/// degenerates to plain slice access.
#[derive(Debug, Clone, Copy)]
pub struct Tuples<'a> {
    base: &'a [Tuple],
    delta: &'a [Tuple],
}

impl<'a> Tuples<'a> {
    fn empty() -> Tuples<'a> {
        Tuples {
            base: &[],
            delta: &[],
        }
    }

    /// Total number of tuples across both segments.
    #[inline]
    pub fn len(self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// True iff both segments are empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.base.is_empty() && self.delta.is_empty()
    }

    /// The tuple with the given id.
    #[inline]
    pub fn get(self, id: usize) -> &'a Tuple {
        if id < self.base.len() {
            &self.base[id]
        } else {
            &self.delta[id - self.base.len()]
        }
    }

    /// Iterates base tuples first, then overlay tuples (ascending id order).
    pub fn iter(self) -> impl Iterator<Item = &'a Tuple> {
        self.base.iter().chain(self.delta.iter())
    }

    /// Length of the frozen base segment (0 for flat stores).
    #[inline]
    pub(crate) fn base_len(self) -> usize {
        self.base.len()
    }

    /// The overlay segment alone (ids `base_len()..len()`).
    #[inline]
    pub(crate) fn delta_slice(self) -> &'a [Tuple] {
        self.delta
    }

    /// The two sub-slices covering ids `lo..hi` (`lo <= hi <= len`), for
    /// scan loops that want tight per-slice iteration instead of a branchy
    /// chained iterator.
    #[inline]
    pub(crate) fn segments(self, lo: usize, hi: usize) -> (&'a [Tuple], &'a [Tuple]) {
        let b = self.base.len();
        (
            &self.base[lo.min(b)..hi.min(b)],
            &self.delta[lo.saturating_sub(b)..hi.saturating_sub(b)],
        )
    }
}

/// A borrowed view of a unary relation: O(1) membership through the layered
/// hash sets and allocation-free iteration, replacing the `BTreeSet`
/// the old `RelationStore::unary` rebuilt on every call (a measurable cost
/// on the per-request CQA answer check).
#[derive(Debug, Clone, Copy)]
pub struct UnaryView<'a> {
    base: Option<&'a Relation>,
    delta: Option<&'a Relation>,
}

impl UnaryView<'_> {
    /// True iff the symbol is in the relation (either layer).
    #[inline]
    pub fn contains(&self, sym: Symbol) -> bool {
        let key = [sym];
        self.base.is_some_and(|r| r.set.contains(&key[..]))
            || self.delta.is_some_and(|r| r.set.contains(&key[..]))
    }

    /// Number of distinct symbols (layers never duplicate each other).
    pub fn len(&self) -> usize {
        self.base.map_or(0, |r| r.tuples.len()) + self.delta.map_or(0, |r| r.tuples.len())
    }

    /// True iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the symbols in insertion order (base layer first); each
    /// symbol appears exactly once.
    pub fn iter(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.base
            .into_iter()
            .chain(self.delta)
            .flat_map(|r| r.tuples.iter().map(|t| t[0]))
    }
}

/// A set of derived relations, stored densely behind an interned
/// [`PredTable`]: the public API is keyed by [`Predicate`] for convenience,
/// while the evaluator addresses relations by [`PredId`] vector index.
///
/// A store is either flat or an overlay over a frozen [`BaseStore`] (see
/// the [module docs](crate::store) for the layering contract).
#[derive(Debug, Clone, Default)]
pub struct RelationStore {
    preds: PredTable,
    /// The frozen bottom layer, if this store is an overlay.
    base: Option<Arc<BaseStore>>,
    /// This layer's relations; for overlays, only the tuples added on top
    /// of the base.
    relations: Vec<Relation>,
    /// Monotone watermark: bumped exactly once per tuple that is actually
    /// inserted (duplicates do not count); overlays start at the base's
    /// watermark. The evaluation drivers compare generations to decide
    /// whether any index could possibly be stale, so an unproductive round
    /// never triggers an index-extension pass.
    generation: u64,
}

impl RelationStore {
    /// Creates an empty flat store.
    pub fn new() -> RelationStore {
        RelationStore::default()
    }

    /// Forks a mutable overlay on a frozen base: lookups see `base ∪
    /// overlay`, inserts land in the overlay, and the fork itself is
    /// O(number of predicates) — the copy-on-write entry point for
    /// family workloads.
    pub fn overlay_on(base: &Arc<BaseStore>) -> RelationStore {
        let mut relations = Vec::new();
        relations.resize_with(base.relations.len(), Relation::default);
        RelationStore {
            preds: base.preds.clone(),
            generation: base.generation,
            base: Some(Arc::clone(base)),
            relations,
        }
    }

    /// The frozen base layer, if this store is an overlay.
    pub fn base(&self) -> Option<&Arc<BaseStore>> {
        self.base.as_ref()
    }

    /// The base layer's relation for an interned id, if the store is an
    /// overlay and the base knows the id (ids interned after the fork are
    /// overlay-only).
    #[inline]
    fn base_relation(&self, id: PredId) -> Option<&Relation> {
        self.base.as_ref().and_then(|b| b.relations.get(id.index()))
    }

    /// Interns a predicate into this store, growing the relation vector.
    pub(crate) fn intern(&mut self, pred: Predicate) -> PredId {
        let id = self.preds.intern(pred);
        if id.index() >= self.relations.len() {
            self.relations
                .resize_with(id.index() + 1, Relation::default);
        }
        id
    }

    /// The store-scoped id of a predicate, if any tuples were ever inserted
    /// for it (or it was touched by an evaluation).
    pub fn pred_id(&self, pred: Predicate) -> Option<PredId> {
        self.preds.lookup(pred)
    }

    /// The tuples of a predicate (empty if absent), in id order: base layer
    /// first, then this layer, each in insertion order.
    pub fn tuples(&self, pred: Predicate) -> impl Iterator<Item = &Tuple> {
        self.preds
            .lookup(pred)
            .map_or_else(Tuples::empty, |id| self.tuples_by_id(id))
            .iter()
    }

    /// The tuples of an interned predicate as a two-segment view; tuple ids
    /// used by indexes and deltas are positions in it.
    #[inline]
    pub(crate) fn tuples_by_id(&self, id: PredId) -> Tuples<'_> {
        Tuples {
            base: self
                .base_relation(id)
                .map_or(&[][..], |r| r.tuples.as_slice()),
            delta: &self.relations[id.index()].tuples,
        }
    }

    /// The committed base-layer index for `(id, mask)`, if this store is an
    /// overlay and the base holds tuples of the predicate. The flag reports
    /// whether the call built the index (first probe over this base) or
    /// found it cached.
    pub(crate) fn base_index(&self, id: PredId, mask: u32) -> Option<(Arc<BaseIndex>, bool)> {
        let base = self.base.as_ref()?;
        match base.relations.get(id.index()) {
            Some(r) if !r.tuples.is_empty() => Some(base.committed_index(id, mask)),
            _ => None,
        }
    }

    /// True iff the tuple is present (either layer).
    pub fn contains(&self, pred: Predicate, tuple: &[Symbol]) -> bool {
        self.preds
            .lookup(pred)
            .is_some_and(|id| self.contains_by_id(id, tuple))
    }

    /// True iff the tuple is present, by interned id.
    #[inline]
    pub(crate) fn contains_by_id(&self, id: PredId, tuple: &[Symbol]) -> bool {
        self.relations[id.index()].set.contains(tuple)
            || self
                .base_relation(id)
                .is_some_and(|r| r.set.contains(tuple))
    }

    /// Inserts a tuple; returns true if it was new.
    pub fn insert(&mut self, pred: Predicate, tuple: impl Into<Tuple>) -> bool {
        let tuple = tuple.into();
        debug_assert_eq!(pred.arity, tuple.len());
        let id = self.intern(pred);
        self.insert_by_id(id, tuple)
    }

    /// Inserts a tuple for an interned predicate; returns true if it was new
    /// in `base ∪ overlay` (tuples the base holds are never duplicated into
    /// the overlay).
    #[inline]
    pub(crate) fn insert_by_id(&mut self, id: PredId, tuple: Tuple) -> bool {
        if self
            .base_relation(id)
            .is_some_and(|r| r.set.contains(tuple.as_slice()))
        {
            return false;
        }
        let inserted = self.relations[id.index()].insert(tuple);
        self.generation += inserted as u64;
        inserted
    }

    /// The store's insertion watermark: the total number of tuples ever
    /// inserted (duplicates excluded), counting the base layer. Strictly
    /// monotone, so two equal generations guarantee that no relation has
    /// grown in between.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of tuples of a predicate, across both layers.
    pub fn len(&self, pred: Predicate) -> usize {
        self.preds.lookup(pred).map_or(0, |id| self.len_of(id))
    }

    /// Number of tuples of an interned predicate, across both layers.
    #[inline]
    pub fn len_of(&self, id: PredId) -> usize {
        self.base_relation(id).map_or(0, |r| r.tuples.len())
            + self.relations[id.index()].tuples.len()
    }

    /// Iterates over every nonempty relation as `(predicate, tuples)`, in
    /// interning order. The supported way for tests and benches to look at
    /// everything a run derived without reaching into store internals.
    pub fn iter_relations(&self) -> impl Iterator<Item = (Predicate, Tuples<'_>)> {
        self.preds
            .iter()
            .map(|(id, pred)| (pred, self.tuples_by_id(id)))
            .filter(|(_, tuples)| !tuples.is_empty())
    }

    /// True iff no tuples at all are stored (in either layer).
    pub fn is_empty(&self) -> bool {
        self.iter_relations().next().is_none()
    }

    /// The unary relation of a predicate as a borrowed [`UnaryView`] (O(1)
    /// membership, allocation-free), or an arity error if the predicate is
    /// not unary. An absent predicate yields the empty view.
    pub fn unary(&self, pred: Predicate) -> Result<UnaryView<'_>, EngineError> {
        if pred.arity != 1 {
            return Err(EngineError::ArityMismatch { pred, expected: 1 });
        }
        let id = self.preds.lookup(pred);
        Ok(UnaryView {
            base: id.and_then(|id| self.base_relation(id)),
            delta: id.map(|id| &self.relations[id.index()]),
        })
    }

    /// Bulk-loads tuples into a predicate of a **flat** store, reserving
    /// capacity up front. The caller asserts the tuples are pairwise
    /// distinct and not yet present (each is still hashed once for the
    /// membership set, but never re-checked or re-inserted); overlays must
    /// go through [`RelationStore::insert`], which deduplicates against the
    /// base.
    pub(crate) fn bulk_load<I: ExactSizeIterator<Item = Tuple>>(
        &mut self,
        pred: Predicate,
        tuples: I,
    ) {
        debug_assert!(self.base.is_none(), "bulk_load is a flat-store fast path");
        let id = self.intern(pred);
        let relation = &mut self.relations[id.index()];
        relation.tuples.reserve(tuples.len());
        relation.set.reserve(tuples.len());
        for tuple in tuples {
            debug_assert_eq!(pred.arity, tuple.len());
            debug_assert!(!relation.set.contains(tuple.as_slice()));
            relation.set.insert(tuple.clone());
            relation.tuples.push(tuple);
            self.generation += 1;
        }
    }
}

impl PartialEq for RelationStore {
    /// Set equality per predicate, ignoring empty relations and insertion
    /// order — the natural notion for comparing evaluation results. Layering
    /// is invisible here: an overlay equals the flat store holding the same
    /// fact sets.
    fn eq(&self, other: &RelationStore) -> bool {
        let count = |store: &RelationStore| store.iter_relations().count();
        count(self) == count(other)
            && self.preds.iter().all(|(id, pred)| {
                let mine = self.tuples_by_id(id);
                mine.is_empty()
                    || other.preds.lookup(pred).is_some_and(|oid| {
                        // Both sides are duplicate-free sets, so equal
                        // cardinality plus inclusion is equality.
                        other.len_of(oid) == mine.len()
                            && mine.iter().all(|t| other.contains_by_id(oid, t.as_slice()))
                    })
            })
    }
}

impl Eq for RelationStore {}

/// Loads the extensional database from a [`DatabaseInstance`]: every relation
/// name `R` becomes a binary predicate `R`, and the unary predicate `adom`
/// holds the active domain.
///
/// This is a bulk fast path: facts arrive grouped per relation with exact
/// counts ([`DatabaseInstance::facts_by_relation`]), so each relation is
/// loaded with pre-reserved capacity and a single hash per fact, instead of
/// re-probing the predicate map and the dedup set fact by fact.
pub fn edb_from_instance(db: &DatabaseInstance) -> RelationStore {
    let mut store = RelationStore::new();
    for (rel, pairs) in db.facts_by_relation() {
        let pred = Predicate {
            name: rel.symbol(),
            arity: 2,
        };
        store.bulk_load(
            pred,
            pairs
                .iter()
                .map(|&(k, v)| Tuple::from([k.symbol(), v.symbol()])),
        );
    }
    let adom = Predicate::new("adom", 1);
    store.bulk_load(adom, db.adom().iter().map(|c| Tuple::from([c.symbol()])));
    store
}

/// Loads a shared EDB prefix once and freezes it into an `Arc`-shared base
/// layer. Pair with [`edb_overlay_on`] to serve a whole family of instances
/// extending the prefix with O(delta) work per instance.
pub fn edb_base_from_instance(db: &DatabaseInstance) -> Arc<BaseStore> {
    BaseStore::freeze(edb_from_instance(db))
}

/// Forks an overlay on a frozen EDB base and loads only `delta`'s facts (and
/// active-domain constants) into it. The resulting store holds exactly the
/// fact sets of `edb_from_instance(prefix ∪ delta)` — facts the base already
/// holds are deduplicated away — while sharing the prefix's tuples and
/// committed indexes with every sibling overlay.
pub fn edb_overlay_on(base: &Arc<BaseStore>, delta: &DatabaseInstance) -> RelationStore {
    let mut store = RelationStore::overlay_on(base);
    for (rel, pairs) in delta.facts_by_relation() {
        let pred = Predicate {
            name: rel.symbol(),
            arity: 2,
        };
        let id = store.intern(pred);
        for &(k, v) in &pairs {
            store.insert_by_id(id, Tuple::from([k.symbol(), v.symbol()]));
        }
    }
    let adom = store.intern(Predicate::new("adom", 1));
    for c in delta.adom() {
        store.insert_by_id(adom, Tuple::from([c.symbol()]));
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(name: &str, arity: usize) -> Predicate {
        Predicate::new(name, arity)
    }

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    fn small_db() -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "a", "b");
        db.insert_parsed("R", "b", "c");
        db.insert_parsed("S", "a", "c");
        db
    }

    #[test]
    fn overlay_sees_base_and_own_tuples() {
        let base = edb_base_from_instance(&small_db());
        let mut delta = DatabaseInstance::new();
        delta.insert_parsed("R", "c", "d");
        let store = edb_overlay_on(&base, &delta);
        let r = pred("R", 2);
        assert_eq!(store.len(r), 3);
        assert!(store.contains(r, &[sym("a"), sym("b")])); // base
        assert!(store.contains(r, &[sym("c"), sym("d")])); // overlay
        assert!(!store.contains(r, &[sym("d"), sym("c")]));
        // adom spans both layers: {a, b, c} ∪ {c, d}.
        assert_eq!(store.len(pred("adom", 1)), 4);
        // The overlay equals the fresh load of the union.
        let fresh = edb_from_instance(&small_db().union(&delta));
        assert_eq!(store, fresh);
        assert_eq!(fresh, store);
    }

    #[test]
    fn overlay_inserts_deduplicate_against_the_base() {
        let base = edb_base_from_instance(&small_db());
        let mut store = RelationStore::overlay_on(&base);
        let r = pred("R", 2);
        let before = store.generation();
        assert_eq!(before, base.generation());
        // A base fact: rejected, watermark untouched.
        assert!(!store.insert(r, [sym("a"), sym("b")]));
        assert_eq!(store.generation(), before);
        // A new fact: lands in the overlay exactly once.
        assert!(store.insert(r, [sym("z"), sym("z")]));
        assert!(!store.insert(r, [sym("z"), sym("z")]));
        assert_eq!(store.generation(), before + 1);
        assert_eq!(store.len(r), 3);
    }

    #[test]
    fn tuple_ids_index_the_concatenation() {
        let base = edb_base_from_instance(&small_db());
        let mut store = RelationStore::overlay_on(&base);
        let r = pred("R", 2);
        store.insert(r, [sym("x"), sym("y")]);
        let id = store.pred_id(r).unwrap();
        let view = store.tuples_by_id(id);
        assert_eq!(view.len(), 3);
        assert_eq!(view.base_len(), 2);
        assert_eq!(view.get(0).as_slice(), &[sym("a"), sym("b")]);
        assert_eq!(view.get(2).as_slice(), &[sym("x"), sym("y")]);
        let collected: Vec<_> = view.iter().map(|t| t[0]).collect();
        assert_eq!(collected, vec![sym("a"), sym("b"), sym("x")]);
        // Segments split ranges at the seam.
        let (lo, hi) = view.segments(1, 3);
        assert_eq!(lo.len(), 1);
        assert_eq!(hi.len(), 1);
        let (all_base, none) = view.segments(0, 2);
        assert_eq!(all_base.len(), 2);
        assert!(none.is_empty());
    }

    #[test]
    fn committed_indexes_build_once_and_are_shared() {
        let base = edb_base_from_instance(&small_db());
        let r_id = {
            let probe = RelationStore::overlay_on(&base);
            probe.pred_id(pred("R", 2)).unwrap()
        };
        let (first, built_first) = base.committed_index(r_id, 0b01);
        assert!(built_first);
        let (second, built_second) = base.committed_index(r_id, 0b01);
        assert!(!built_second);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(base.index_builds(), 1);
        // A different mask is a different index.
        let (_, built_other) = base.committed_index(r_id, 0b10);
        assert!(built_other);
        assert_eq!(base.index_builds(), 2);
        // The key-projected entries cover the base tuples.
        let key = Tuple::from([sym("a")]);
        assert_eq!(
            first.entries.get(&key).map(Vec::as_slice),
            Some(&[0u32][..])
        );
    }

    #[test]
    fn unary_view_is_deduplicated_and_layered() {
        let mut flat = RelationStore::new();
        let p = pred("p", 1);
        // Duplicate inserts collapse: the view sees each symbol once.
        assert!(flat.insert(p, [sym("a")]));
        assert!(!flat.insert(p, [sym("a")]));
        assert!(flat.insert(p, [sym("b")]));
        let view = flat.unary(p).unwrap();
        assert_eq!(view.len(), 2);
        assert!(view.contains(sym("a")));
        assert!(!view.contains(sym("c")));
        assert_eq!(view.iter().collect::<Vec<_>>(), vec![sym("a"), sym("b")]);

        // Across layers: base {a, b}, overlay adds c and re-adds a (no-op).
        let base = BaseStore::freeze(flat);
        let mut overlay = RelationStore::overlay_on(&base);
        overlay.insert(p, [sym("c")]);
        overlay.insert(p, [sym("a")]);
        let view = overlay.unary(p).unwrap();
        assert_eq!(view.len(), 3);
        assert_eq!(
            view.iter().collect::<Vec<_>>(),
            vec![sym("a"), sym("b"), sym("c")]
        );

        // Arity misuse is still rejected; absent predicates are empty.
        assert!(overlay.unary(pred("R", 2)).is_err());
        assert!(overlay.unary(pred("absent", 1)).unwrap().is_empty());
    }

    #[test]
    fn freeze_rejects_overlays() {
        let base = edb_base_from_instance(&small_db());
        let overlay = RelationStore::overlay_on(&base);
        let result = std::panic::catch_unwind(move || BaseStore::freeze(overlay));
        assert!(result.is_err(), "re-freezing an overlay must panic");
    }
}
