//! Relation storage for the engine: interned predicate tables and **layered
//! copy-on-write relation stores**.
//!
//! # Store layering
//!
//! A [`RelationStore`] is either *flat* (the classic single-layer store: one
//! append-only tuple vector plus a membership set per predicate) or an
//! *overlay* over a frozen, `Arc`-shared [`BaseStore`]:
//!
//! * the **base** holds the tuples of a shared EDB prefix, loaded and frozen
//!   once ([`edb_base_from_instance`]), together with its *committed*
//!   `(predicate, bound-mask)` hash indexes — built lazily at most once per
//!   base and then shared read-only by every run over it;
//! * the **overlay** holds only what one run adds on top: per-request delta
//!   facts ([`edb_overlay_on`]) and everything the engine derives. Forking an
//!   overlay is O(number of predicates), not O(database).
//!
//! Tuple ids — the currency of the engine's indexes and semi-naive delta
//! ranges — are positions in the *concatenation* base-then-overlay, exposed
//! as the two-segment [`Tuples`] view. A flat store is simply the
//! empty-base case: every view degenerates to plain slice access, so the
//! single-layer engine paths are unchanged (and `threads = 1` evaluation
//! stays bit-identical to the pre-layering engine).
//!
//! Duplicate suppression spans layers: inserting a tuple the base already
//! holds is a no-op, so `base ∪ overlay` is a genuine set and
//! [`RelationStore::len_of`] is its cardinality. The generation watermark of
//! an overlay starts at the base's, keeping the "has anything grown?"
//! comparisons of the evaluation drivers monotone across the seam.
//!
//! # Columnar mirrors
//!
//! Unary and binary relations — the entire Lemma 14 fragment — additionally
//! maintain flat `u32` column mirrors of their tuple vectors (raw
//! [`Symbol::id`]s, appended on every insert) plus a bitset over symbol ids
//! for unary membership. The specialized kernels of [`crate::kernel`] scan
//! and probe these mirrors instead of boxed tuples; the generic engine paths
//! never look at them. Base layers freeze their columns with the rest of the
//! relation, and [`BaseStore`] caches committed CSR adjacency
//! ([`CsrIndex`]) per `(predicate, key column)` exactly like its committed
//! hash indexes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cqa_core::symbol::Symbol;
use cqa_db::instance::DatabaseInstance;

use crate::ast::Predicate;
use crate::engine::EngineError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::tuple::Tuple;

/// A dense predicate id, assigned by a [`PredTable`] in interning order.
///
/// Ids are scoped to the table that produced them: a
/// [`crate::engine::CompiledProgram`] and a [`RelationStore`] each intern
/// independently, and the evaluator translates between the two with a
/// per-run array. An overlay store *clones* its base's table, so base ids
/// remain valid store ids in every fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub(crate) u32);

impl PredId {
    /// The id as a dense vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interner of [`Predicate`]s into dense [`PredId`]s.
#[derive(Debug, Clone, Default)]
pub struct PredTable {
    ids: HashMap<Predicate, PredId>,
    preds: Vec<Predicate>,
}

impl PredTable {
    /// Interns a predicate, assigning the next dense id on first sight.
    pub(crate) fn intern(&mut self, pred: Predicate) -> PredId {
        if let Some(&id) = self.ids.get(&pred) {
            return id;
        }
        let id = PredId(self.preds.len() as u32);
        self.preds.push(pred);
        self.ids.insert(pred, id);
        id
    }

    /// The id of a predicate, if it has been interned.
    pub fn lookup(&self, pred: Predicate) -> Option<PredId> {
        self.ids.get(&pred).copied()
    }

    /// The predicate with the given id.
    pub fn predicate(&self, id: PredId) -> Predicate {
        self.preds[id.index()]
    }

    /// Number of interned predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Iterates over `(id, predicate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PredId, Predicate)> + '_ {
        self.preds
            .iter()
            .enumerate()
            .map(|(i, &p)| (PredId(i as u32), p))
    }
}

/// A growable bitset over raw [`Symbol::id`]s, giving unary relations O(1)
/// membership without hashing. Word storage grows to the highest id seen, so
/// memory is bounded by the interner size (a few KiB for CQA workloads).
#[derive(Debug, Clone, Default)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Sets the bit; returns true iff it was previously clear (test-and-set,
    /// so unary relations get membership and dedup from the same word probe).
    fn insert(&mut self, id: u32) -> bool {
        let word = (id / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (id % 64);
        let novel = self.words[word] & bit == 0;
        self.words[word] |= bit;
        novel
    }

    /// True iff the id is in the set.
    #[inline]
    pub(crate) fn contains(&self, id: u32) -> bool {
        self.words
            .get((id / 64) as usize)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Clears the bit; returns true iff it was previously set. The removal
    /// mirror of [`BitSet::insert`], used only by the differential
    /// maintenance passes on flat maintained stores.
    fn remove(&mut self, id: u32) -> bool {
        let Some(word) = self.words.get_mut((id / 64) as usize) else {
            return false;
        };
        let bit = 1u64 << (id % 64);
        let present = *word & bit != 0;
        *word &= !bit;
        present
    }
}

/// Flat `u32` mirrors of a relation's tuple vector, maintained eagerly on
/// insert for arities 1 and 2 (other arities leave the mirrors empty and are
/// never kernel-eligible). Column `i` of tuple id `t` is `c<i>[t]`; unary
/// relations additionally mirror membership into a [`BitSet`].
#[derive(Debug, Clone, Default)]
struct ColumnMirror {
    c0: Vec<u32>,
    c1: Vec<u32>,
    bits: BitSet,
}

impl ColumnMirror {
    /// Appends the tuple's columns (membership is the caller's problem: the
    /// unary bitset doubles as the membership structure, so [`Relation`]
    /// probes it *before* deciding to push).
    #[inline]
    fn push(&mut self, tuple: &Tuple) {
        match tuple.as_slice() {
            [a] => self.c0.push(a.id()),
            [a, b] => {
                self.c0.push(a.id());
                self.c1.push(b.id());
            }
            _ => {}
        }
    }
}

/// Packs a binary tuple into one machine word, so binary relations (the bulk
/// of every CQA workload) dedup through a `FxHashSet<u64>` — one multiply
/// and a word compare per probe — instead of hashing a 32-byte [`Tuple`].
#[inline]
fn pack_pair(a: u32, b: u32) -> u64 {
    (u64::from(a) << 32) | u64::from(b)
}

/// One predicate's tuples: a dense append-only vector (indexes and deltas
/// address tuples by position in it), shape-routed membership, and the
/// columnar mirror the specialized kernels read.
///
/// Membership is columnar for the kernel fragment: arity 1 tests the mirror's
/// [`BitSet`], arity 2 a packed-`u64` set ([`pack_pair`]); only arity ≥ 3
/// falls back to hashing whole [`Tuple`]s. Insert-side dedup is the dominant
/// shared cost of a fixpoint round, so this routing speeds both execution
/// cores — it is what makes the (u32, u32) store "columnar" end to end
/// rather than only on the scan side.
#[derive(Debug, Clone, Default)]
struct Relation {
    tuples: Vec<Tuple>,
    /// Membership for arity ≥ 3 only; empty otherwise.
    set: FxHashSet<Tuple>,
    /// Membership for arity 2 only ([`pack_pair`] keys); empty otherwise.
    pairs: FxHashSet<u64>,
    cols: ColumnMirror,
}

impl Relation {
    /// True iff the tuple is present, probing the shape-matched structure.
    #[inline]
    fn contains(&self, tuple: &[Symbol]) -> bool {
        match tuple {
            [a] => self.cols.bits.contains(a.id()),
            [a, b] => self.pairs.contains(&pack_pair(a.id(), b.id())),
            _ => self.set.contains(tuple),
        }
    }

    fn insert(&mut self, tuple: Tuple) -> bool {
        // Single membership probe per insert; only the arity ≥ 3 fallback
        // hashes (and clones) the tuple itself.
        let novel = match tuple.as_slice() {
            [a] => self.cols.bits.insert(a.id()),
            [a, b] => self.pairs.insert(pack_pair(a.id(), b.id())),
            _ => self.set.insert(tuple.clone()),
        };
        if novel {
            self.cols.push(&tuple);
            self.tuples.push(tuple);
        }
        novel
    }

    /// Removes a tuple, keeping the membership structure and the columnar
    /// mirrors consistent with the tuple vector; returns true iff it was
    /// present. The vacated position is back-filled with the last tuple
    /// (`swap_remove`), so tuple ids are **not** stable across removals —
    /// only the flat maintained stores of [`crate::maintain`] ever remove,
    /// and they never feed the id-addressed engine paths (semi-naive delta
    /// ranges, [`crate::plan::IndexSpace`], kernels).
    fn remove(&mut self, tuple: &[Symbol]) -> bool {
        let present = match tuple {
            [a] => self.cols.bits.remove(a.id()),
            [a, b] => self.pairs.remove(&pack_pair(a.id(), b.id())),
            _ => self.set.remove(tuple),
        };
        if present {
            let pos = self
                .tuples
                .iter()
                .position(|t| t.as_slice() == tuple)
                .expect("membership and tuple vector agree");
            self.tuples.swap_remove(pos);
            match tuple.len() {
                1 => {
                    self.cols.c0.swap_remove(pos);
                }
                2 => {
                    self.cols.c0.swap_remove(pos);
                    self.cols.c1.swap_remove(pos);
                }
                _ => {}
            }
        }
        present
    }
}

/// Projects `tuple` onto the positions of `mask` into `proj` (cleared
/// first). Committed base indexes and per-run overlay extensions share this
/// helper so both sides of a layered probe agree on the key shape.
///
/// The mask is a `u32`, so positions ≥ 32 (never seen in practice) are not
/// part of any probe key; the planner falls back to per-candidate checks for
/// them.
#[inline]
pub(crate) fn project_onto_mask(tuple: &Tuple, mask: u32, proj: &mut Tuple) {
    proj.clear();
    for pos in 0..tuple.len().min(32) {
        if mask & (1 << pos) != 0 {
            proj.push(tuple[pos]);
        }
    }
}

/// A committed hash index over one base relation for a `(predicate,
/// bound-mask)` pair: the projection of each base tuple onto the mask's
/// positions, mapped to the ascending ids of matching tuples. Built at most
/// once per [`BaseStore`] and then shared read-only (behind an `Arc`) by
/// every overlay run's [`crate::plan::IndexSpace`] slot that probes it.
#[derive(Debug, Default)]
pub(crate) struct BaseIndex {
    pub(crate) entries: FxHashMap<Tuple, Vec<u32>>,
}

impl BaseIndex {
    fn build(tuples: &[Tuple], mask: u32) -> BaseIndex {
        let mut entries: FxHashMap<Tuple, Vec<u32>> = FxHashMap::default();
        let mut proj = Tuple::new();
        for (id, tuple) in tuples.iter().enumerate() {
            project_onto_mask(tuple, mask, &mut proj);
            entries.entry(proj.clone()).or_default().push(id as u32);
        }
        BaseIndex { entries }
    }
}

/// CSR adjacency over one column segment of a binary relation: key value →
/// the other column's values, in ascending tuple-id order (so a layered
/// probe that walks the base bucket then the overlay bucket enumerates
/// candidates exactly like the generic hash index does).
///
/// Keys within `4·n + 1024` of each other are stored dense — a counting
/// sort into an offsets/values pair, O(1) bucket lookup with no hashing —
/// and wider key ranges fall back to a hash map so a single outlier id
/// cannot blow up memory.
#[derive(Debug)]
pub(crate) enum CsrIndex {
    /// Offsets are indexed by `key - min_key`; `offsets[i]..offsets[i + 1]`
    /// delimits the bucket in `vals`.
    Dense {
        min_key: u32,
        offsets: Vec<u32>,
        vals: Vec<u32>,
    },
    /// Sparse fallback for pathologically wide key ranges.
    Sparse(FxHashMap<u32, Vec<u32>>),
}

impl CsrIndex {
    /// Builds the adjacency from parallel key/value columns (equal length).
    pub(crate) fn build(keys: &[u32], vals: &[u32]) -> CsrIndex {
        debug_assert_eq!(keys.len(), vals.len());
        let n = keys.len();
        if n == 0 {
            return CsrIndex::Dense {
                min_key: 0,
                offsets: vec![0],
                vals: Vec::new(),
            };
        }
        let min_key = keys.iter().copied().min().expect("nonempty");
        let max_key = keys.iter().copied().max().expect("nonempty");
        let range = (max_key - min_key) as usize + 1;
        if range <= 4 * n + 1024 {
            let mut offsets = vec![0u32; range + 1];
            for &k in keys {
                offsets[(k - min_key) as usize + 1] += 1;
            }
            for i in 1..offsets.len() {
                offsets[i] += offsets[i - 1];
            }
            let mut cursor = offsets.clone();
            let mut out = vec![0u32; n];
            // Ascending id order per bucket falls out of the stable pass.
            for (&k, &v) in keys.iter().zip(vals) {
                let slot = &mut cursor[(k - min_key) as usize];
                out[*slot as usize] = v;
                *slot += 1;
            }
            CsrIndex::Dense {
                min_key,
                offsets,
                vals: out,
            }
        } else {
            let mut map: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
            for (&k, &v) in keys.iter().zip(vals) {
                map.entry(k).or_default().push(v);
            }
            CsrIndex::Sparse(map)
        }
    }

    /// The other-column values paired with `key` (ascending tuple-id order).
    #[inline]
    pub(crate) fn bucket(&self, key: u32) -> &[u32] {
        match self {
            CsrIndex::Dense {
                min_key,
                offsets,
                vals,
            } => {
                let Some(i) = key.checked_sub(*min_key).map(|d| d as usize) else {
                    return &[];
                };
                if i + 1 >= offsets.len() {
                    return &[];
                }
                &vals[offsets[i] as usize..offsets[i + 1] as usize]
            }
            CsrIndex::Sparse(map) => map.get(&key).map_or(&[], Vec::as_slice),
        }
    }
}

/// A frozen relation store, shared via `Arc` as the common bottom layer of
/// many overlay [`RelationStore`]s.
///
/// Freezing a flat store ([`BaseStore::freeze`]) makes its tuples immutable,
/// which buys two amortizations for family workloads (many runs extending
/// one shared EDB prefix):
///
/// * the prefix's tuples are loaded and deduplicated **once**, and every
///   fork ([`RelationStore::overlay_on`]) is O(number of predicates);
/// * the `(predicate, bound-mask)` indexes the runs probe are built **once**
///   per base ([`BaseStore`] caches them by `(pred, mask)`) instead of once
///   per run — [`crate::parallel::EvalStats::base_index_builds`] counts the
///   builds, and a regression test pins "once per family".
///
/// A base store is immutable except for its index cache, which is an
/// interior-mutability memo (a mutex is fine: each entry is built at most
/// once, after which every access is a clone of an `Arc`).
#[derive(Debug)]
pub struct BaseStore {
    preds: PredTable,
    relations: Vec<Relation>,
    generation: u64,
    /// Committed indexes, keyed by `(pred id, mask)`. Built under the lock,
    /// so concurrent first probes of one `(pred, mask)` still build exactly
    /// once (the loser of the race finds the entry).
    indexes: Mutex<HashMap<(u32, u32), Arc<BaseIndex>>>,
    /// Committed CSR adjacencies for the kernel path, keyed by `(pred id,
    /// key column)`; same build-once contract as `indexes`.
    csr: Mutex<HashMap<(u32, u8), Arc<CsrIndex>>>,
    /// Number of committed indexes actually built (cache misses), counting
    /// both hash indexes and CSR adjacencies.
    index_builds: AtomicU64,
    /// Checkpointed variants of this base: per compiled program (keyed by the
    /// caller — see [`BaseStore::checkpoint`]), a frozen copy of this base
    /// whose relations additionally hold the fixpoint of the program's
    /// checkpointable strata. Built at most once per key; same
    /// interior-mutability memo discipline as the index caches. Always empty
    /// on the variants themselves (they are keyed off the original base).
    checkpoints: Mutex<HashMap<usize, Arc<BaseStore>>>,
    /// Differentially maintained materialized-IDB slots living on this base,
    /// keyed by `(compiled-program address, request slot)` — see
    /// [`crate::maintain`] and [`BaseStore::maintained_slot`]. The map only
    /// hands out `Arc<MaintainedEntry>`s; the per-slot state mutex is taken
    /// *after* the map lock is released, so a long maintenance pass never
    /// blocks unrelated slots. Dropped with the base, so LRU eviction of a
    /// resident reclaims its maintained state along with everything else
    /// (the maintained stores are flat — they hold no `Arc` back to this
    /// base, so there is no cycle to leak through).
    maintained: Mutex<HashMap<(usize, usize), Arc<MaintainedEntry>>>,
}

/// One maintained-IDB slot on a [`BaseStore`]: the state under its own lock,
/// plus a relaxed tuple-count mirror so registry accounting
/// ([`BaseStore::maintained_tuples`]) never has to wait behind an in-flight
/// maintenance or bootstrap pass.
#[derive(Debug, Default)]
pub struct MaintainedEntry {
    /// The maintained state; `None` until the slot's first bootstrap. The
    /// holder of this lock updates `tuples` before releasing it.
    pub state: Mutex<Option<crate::maintain::MaintainedIdb>>,
    /// Total tuples currently held by this slot's maintained store, mirrored
    /// from `state` with relaxed ordering (accounting-only precision).
    pub tuples: AtomicU64,
}

impl BaseStore {
    /// Freezes a flat store into a shareable base layer.
    ///
    /// # Panics
    ///
    /// Panics if `store` is itself an overlay; freeze the flat store the
    /// overlay was forked from instead (re-freezing derived overlays is not
    /// a supported way to stack layers).
    pub fn freeze(store: RelationStore) -> Arc<BaseStore> {
        assert!(
            store.base.is_none(),
            "BaseStore::freeze expects a flat store, not an overlay"
        );
        Arc::new(BaseStore {
            preds: store.preds,
            relations: store.relations,
            generation: store.generation,
            indexes: Mutex::new(HashMap::new()),
            csr: Mutex::new(HashMap::new()),
            index_builds: AtomicU64::new(0),
            checkpoints: Mutex::new(HashMap::new()),
            maintained: Mutex::new(HashMap::new()),
        })
    }

    /// The maintained-IDB slot for `key` (one per `(compiled program,
    /// request slot)` pair — callers use the program's cache-stable address,
    /// like [`BaseStore::checkpoint`]), creating an empty entry on first
    /// request. Only the entry `Arc` is handed out under the map lock; the
    /// caller locks the entry's own state mutex afterwards, so two requests
    /// maintaining different slots never serialize on each other.
    pub fn maintained_slot(&self, key: (usize, usize)) -> Arc<MaintainedEntry> {
        let mut map = self.maintained.lock().expect("maintained map");
        Arc::clone(map.entry(key).or_default())
    }

    /// Total tuples currently held across this base's maintained-IDB slots —
    /// the memory-pressure contribution of differential maintenance, read by
    /// the server registry's LRU accounting. Sums the relaxed per-slot
    /// mirrors, so it never blocks behind an in-flight maintenance pass.
    pub fn maintained_tuples(&self) -> u64 {
        self.maintained
            .lock()
            .expect("maintained map")
            .values()
            .map(|entry| entry.tuples.load(Ordering::Relaxed))
            .sum()
    }

    /// A mutable flat copy of this base — same predicates, same tuples, same
    /// generation watermark. This is how a checkpointed variant is
    /// constructed: thaw, pre-derive the checkpointable strata into the copy,
    /// re-freeze ([`crate::engine::CompiledProgram::checkpoint_base`]).
    pub fn thaw(&self) -> RelationStore {
        RelationStore {
            preds: self.preds.clone(),
            base: None,
            relations: self.relations.clone(),
            generation: self.generation,
        }
    }

    /// The checkpointed variant of this base for `key` (one key per compiled
    /// program — callers use the program's cache-stable address), building it
    /// with `build` on first request. Concurrent first requests may both
    /// build; the first insertion wins and the loser's copy is dropped, so
    /// every later caller shares one variant (the build runs outside the
    /// lock — it evaluates a whole program and must not block index probes).
    pub fn checkpoint(
        &self,
        key: usize,
        build: impl FnOnce(&BaseStore) -> Arc<BaseStore>,
    ) -> Arc<BaseStore> {
        if let Some(cp) = self.checkpoints.lock().expect("checkpoint cache").get(&key) {
            return Arc::clone(cp);
        }
        let built = build(self);
        let mut cache = self.checkpoints.lock().expect("checkpoint cache");
        Arc::clone(cache.entry(key).or_insert(built))
    }

    /// The base's insertion watermark (the overlay forks start from it).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of committed `(pred, mask)` indexes built so far, including
    /// those of this base's checkpointed variants (checkpoint-resumed runs
    /// probe the variant's committed structures, so without the fold the
    /// original base would under-report — and the build-once regression pins
    /// would stop covering the resumed path). For a family of runs over one
    /// base this stops growing after the first run — the whole point of
    /// sharing the base.
    pub fn index_builds(&self) -> u64 {
        let own = self.index_builds.load(Ordering::Relaxed);
        let variants: u64 = self
            .checkpoints
            .lock()
            .expect("checkpoint cache")
            .values()
            .map(|cp| cp.index_builds())
            .sum();
        own + variants
    }

    /// The committed index for `(id, mask)`, building it on first request;
    /// the flag reports whether this call built it.
    pub(crate) fn committed_index(&self, id: PredId, mask: u32) -> (Arc<BaseIndex>, bool) {
        let mut cache = self.indexes.lock().expect("base index cache poisoned");
        match cache.entry((id.0, mask)) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let built = Arc::new(BaseIndex::build(&self.relations[id.index()].tuples, mask));
                self.index_builds.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(e.insert(built)), true)
            }
        }
    }

    /// The committed CSR adjacency for `(id, key_col)` over a binary base
    /// relation, building it on first request; the flag reports whether this
    /// call built it. Built once per base, shared by every overlay run.
    pub(crate) fn committed_csr(&self, id: PredId, key_col: u8) -> (Arc<CsrIndex>, bool) {
        let mut cache = self.csr.lock().expect("base csr cache poisoned");
        match cache.entry((id.0, key_col)) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let cols = &self.relations[id.index()].cols;
                let (keys, vals) = match key_col {
                    0 => (&cols.c0, &cols.c1),
                    _ => (&cols.c1, &cols.c0),
                };
                let built = Arc::new(CsrIndex::build(keys, vals));
                self.index_builds.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(e.insert(built)), true)
            }
        }
    }
}

/// The tuples of one predicate as a two-segment view: the frozen base
/// layer's slice followed by the overlay's. Tuple ids — the positions the
/// engine's indexes and semi-naive delta ranges speak — index the
/// concatenation. A flat store has an empty base segment, so every accessor
/// degenerates to plain slice access.
#[derive(Debug, Clone, Copy)]
pub struct Tuples<'a> {
    base: &'a [Tuple],
    delta: &'a [Tuple],
}

impl<'a> Tuples<'a> {
    fn empty() -> Tuples<'a> {
        Tuples {
            base: &[],
            delta: &[],
        }
    }

    /// Total number of tuples across both segments.
    #[inline]
    pub fn len(self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// True iff both segments are empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.base.is_empty() && self.delta.is_empty()
    }

    /// The tuple with the given id.
    #[inline]
    pub fn get(self, id: usize) -> &'a Tuple {
        if id < self.base.len() {
            &self.base[id]
        } else {
            &self.delta[id - self.base.len()]
        }
    }

    /// Iterates base tuples first, then overlay tuples (ascending id order).
    pub fn iter(self) -> impl Iterator<Item = &'a Tuple> {
        self.base.iter().chain(self.delta.iter())
    }

    /// Length of the frozen base segment (0 for flat stores).
    #[inline]
    pub(crate) fn base_len(self) -> usize {
        self.base.len()
    }

    /// The overlay segment alone (ids `base_len()..len()`).
    #[inline]
    pub(crate) fn delta_slice(self) -> &'a [Tuple] {
        self.delta
    }

    /// The two sub-slices covering ids `lo..hi` (`lo <= hi <= len`), for
    /// scan loops that want tight per-slice iteration instead of a branchy
    /// chained iterator.
    #[inline]
    pub(crate) fn segments(self, lo: usize, hi: usize) -> (&'a [Tuple], &'a [Tuple]) {
        let b = self.base.len();
        (
            &self.base[lo.min(b)..hi.min(b)],
            &self.delta[lo.saturating_sub(b)..hi.saturating_sub(b)],
        )
    }
}

/// One layer's `(c0, c1)` column-slice pair.
pub(crate) type ColPair<'a> = (&'a [u32], &'a [u32]);

/// Two-segment view of a binary relation's `u32` column mirrors (base layer
/// then overlay), the kernel analogue of [`Tuples`]: column `c` of tuple id
/// `t` is the concatenation's `c<c>[t]`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cols2<'a> {
    pub(crate) base0: &'a [u32],
    pub(crate) base1: &'a [u32],
    pub(crate) delta0: &'a [u32],
    pub(crate) delta1: &'a [u32],
}

impl<'a> Cols2<'a> {
    /// The column pairs covering ids `lo..hi`, split at the base/overlay
    /// seam: `((base c0, base c1), (overlay c0, overlay c1))`.
    #[inline]
    pub(crate) fn segments(self, lo: usize, hi: usize) -> (ColPair<'a>, ColPair<'a>) {
        let b = self.base0.len();
        let (blo, bhi) = (lo.min(b), hi.min(b));
        let (dlo, dhi) = (lo.saturating_sub(b), hi.saturating_sub(b));
        (
            (&self.base0[blo..bhi], &self.base1[blo..bhi]),
            (&self.delta0[dlo..dhi], &self.delta1[dlo..dhi]),
        )
    }
}

/// Two-segment view of a unary relation's column mirror plus the layered
/// membership bitsets.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cols1<'a> {
    pub(crate) base: &'a [u32],
    pub(crate) delta: &'a [u32],
    base_bits: Option<&'a BitSet>,
    delta_bits: &'a BitSet,
}

impl<'a> Cols1<'a> {
    /// True iff the symbol id is in the relation (either layer).
    #[inline]
    pub(crate) fn contains(&self, id: u32) -> bool {
        self.delta_bits.contains(id) || self.base_bits.is_some_and(|b| b.contains(id))
    }

    /// The column slices covering ids `lo..hi`, split at the seam.
    #[inline]
    pub(crate) fn segments(self, lo: usize, hi: usize) -> (&'a [u32], &'a [u32]) {
        let b = self.base.len();
        (
            &self.base[lo.min(b)..hi.min(b)],
            &self.delta[lo.saturating_sub(b)..hi.saturating_sub(b)],
        )
    }
}

/// A borrowed view of a unary relation: O(1) membership through the layered
/// hash sets and allocation-free iteration, replacing the `BTreeSet`
/// the old `RelationStore::unary` rebuilt on every call (a measurable cost
/// on the per-request CQA answer check).
#[derive(Debug, Clone, Copy)]
pub struct UnaryView<'a> {
    base: Option<&'a Relation>,
    delta: Option<&'a Relation>,
}

impl UnaryView<'_> {
    /// True iff the symbol is in the relation (either layer): two bitset
    /// word probes, no hashing.
    #[inline]
    pub fn contains(&self, sym: Symbol) -> bool {
        self.base.is_some_and(|r| r.cols.bits.contains(sym.id()))
            || self.delta.is_some_and(|r| r.cols.bits.contains(sym.id()))
    }

    /// Number of distinct symbols (layers never duplicate each other).
    pub fn len(&self) -> usize {
        self.base.map_or(0, |r| r.tuples.len()) + self.delta.map_or(0, |r| r.tuples.len())
    }

    /// True iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the symbols in insertion order (base layer first); each
    /// symbol appears exactly once.
    pub fn iter(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.base
            .into_iter()
            .chain(self.delta)
            .flat_map(|r| r.tuples.iter().map(|t| t[0]))
    }
}

/// A set of derived relations, stored densely behind an interned
/// [`PredTable`]: the public API is keyed by [`Predicate`] for convenience,
/// while the evaluator addresses relations by [`PredId`] vector index.
///
/// A store is either flat or an overlay over a frozen [`BaseStore`] (see
/// the [module docs](crate::store) for the layering contract).
#[derive(Debug, Clone, Default)]
pub struct RelationStore {
    preds: PredTable,
    /// The frozen bottom layer, if this store is an overlay.
    base: Option<Arc<BaseStore>>,
    /// This layer's relations; for overlays, only the tuples added on top
    /// of the base.
    relations: Vec<Relation>,
    /// Monotone watermark: bumped exactly once per tuple that is actually
    /// inserted (duplicates do not count); overlays start at the base's
    /// watermark. The evaluation drivers compare generations to decide
    /// whether any index could possibly be stale, so an unproductive round
    /// never triggers an index-extension pass.
    generation: u64,
}

impl RelationStore {
    /// Creates an empty flat store.
    pub fn new() -> RelationStore {
        RelationStore::default()
    }

    /// Forks a mutable overlay on a frozen base: lookups see `base ∪
    /// overlay`, inserts land in the overlay, and the fork itself is
    /// O(number of predicates) — the copy-on-write entry point for
    /// family workloads.
    pub fn overlay_on(base: &Arc<BaseStore>) -> RelationStore {
        let mut relations = Vec::new();
        relations.resize_with(base.relations.len(), Relation::default);
        RelationStore {
            preds: base.preds.clone(),
            generation: base.generation,
            base: Some(Arc::clone(base)),
            relations,
        }
    }

    /// The frozen base layer, if this store is an overlay.
    pub fn base(&self) -> Option<&Arc<BaseStore>> {
        self.base.as_ref()
    }

    /// The base layer's relation for an interned id, if the store is an
    /// overlay and the base knows the id (ids interned after the fork are
    /// overlay-only).
    #[inline]
    fn base_relation(&self, id: PredId) -> Option<&Relation> {
        self.base.as_ref().and_then(|b| b.relations.get(id.index()))
    }

    /// Interns a predicate into this store, growing the relation vector.
    pub(crate) fn intern(&mut self, pred: Predicate) -> PredId {
        let id = self.preds.intern(pred);
        if id.index() >= self.relations.len() {
            self.relations
                .resize_with(id.index() + 1, Relation::default);
        }
        id
    }

    /// The store-scoped id of a predicate, if any tuples were ever inserted
    /// for it (or it was touched by an evaluation).
    pub fn pred_id(&self, pred: Predicate) -> Option<PredId> {
        self.preds.lookup(pred)
    }

    /// The tuples of a predicate (empty if absent), in id order: base layer
    /// first, then this layer, each in insertion order.
    pub fn tuples(&self, pred: Predicate) -> impl Iterator<Item = &Tuple> {
        self.preds
            .lookup(pred)
            .map_or_else(Tuples::empty, |id| self.tuples_by_id(id))
            .iter()
    }

    /// The tuples of an interned predicate as a two-segment view; tuple ids
    /// used by indexes and deltas are positions in it.
    #[inline]
    pub(crate) fn tuples_by_id(&self, id: PredId) -> Tuples<'_> {
        Tuples {
            base: self
                .base_relation(id)
                .map_or(&[][..], |r| r.tuples.as_slice()),
            delta: &self.relations[id.index()].tuples,
        }
    }

    /// The committed base-layer index for `(id, mask)`, if this store is an
    /// overlay and the base holds tuples of the predicate. The flag reports
    /// whether the call built the index (first probe over this base) or
    /// found it cached.
    pub(crate) fn base_index(&self, id: PredId, mask: u32) -> Option<(Arc<BaseIndex>, bool)> {
        let base = self.base.as_ref()?;
        match base.relations.get(id.index()) {
            Some(r) if !r.tuples.is_empty() => Some(base.committed_index(id, mask)),
            _ => None,
        }
    }

    /// The committed base-layer CSR adjacency for `(id, key_col)`, if this
    /// store is an overlay and the base holds tuples of the predicate; same
    /// contract as [`RelationStore::base_index`].
    pub(crate) fn base_csr(&self, id: PredId, key_col: u8) -> Option<(Arc<CsrIndex>, bool)> {
        let base = self.base.as_ref()?;
        match base.relations.get(id.index()) {
            Some(r) if !r.tuples.is_empty() => Some(base.committed_csr(id, key_col)),
            _ => None,
        }
    }

    /// The binary column mirrors of an interned predicate as a two-segment
    /// view; ids match [`RelationStore::tuples_by_id`].
    #[inline]
    pub(crate) fn cols2_by_id(&self, id: PredId) -> Cols2<'_> {
        let base = self.base_relation(id).map(|r| &r.cols);
        let delta = &self.relations[id.index()].cols;
        Cols2 {
            base0: base.map_or(&[][..], |c| &c.c0),
            base1: base.map_or(&[][..], |c| &c.c1),
            delta0: &delta.c0,
            delta1: &delta.c1,
        }
    }

    /// The unary column mirror and membership bitsets of an interned
    /// predicate as a two-segment view.
    #[inline]
    pub(crate) fn cols1_by_id(&self, id: PredId) -> Cols1<'_> {
        let base = self.base_relation(id).map(|r| &r.cols);
        let delta = &self.relations[id.index()].cols;
        Cols1 {
            base: base.map_or(&[][..], |c| &c.c0),
            delta: &delta.c0,
            base_bits: base.map(|c| &c.bits),
            delta_bits: &delta.bits,
        }
    }

    /// True iff the tuple is present (either layer).
    pub fn contains(&self, pred: Predicate, tuple: &[Symbol]) -> bool {
        self.preds
            .lookup(pred)
            .is_some_and(|id| self.contains_by_id(id, tuple))
    }

    /// True iff the tuple is present, by interned id.
    #[inline]
    pub(crate) fn contains_by_id(&self, id: PredId, tuple: &[Symbol]) -> bool {
        self.relations[id.index()].contains(tuple)
            || self.base_relation(id).is_some_and(|r| r.contains(tuple))
    }

    /// Inserts a tuple; returns true if it was new.
    pub fn insert(&mut self, pred: Predicate, tuple: impl Into<Tuple>) -> bool {
        let tuple = tuple.into();
        debug_assert_eq!(pred.arity, tuple.len());
        let id = self.intern(pred);
        self.insert_by_id(id, tuple)
    }

    /// Inserts a tuple for an interned predicate; returns true if it was new
    /// in `base ∪ overlay` (tuples the base holds are never duplicated into
    /// the overlay).
    #[inline]
    pub(crate) fn insert_by_id(&mut self, id: PredId, tuple: Tuple) -> bool {
        if self
            .base_relation(id)
            .is_some_and(|r| r.contains(tuple.as_slice()))
        {
            return false;
        }
        let inserted = self.relations[id.index()].insert(tuple);
        self.generation += inserted as u64;
        inserted
    }

    /// Removes a tuple from a **flat** store; returns true iff it was
    /// present. Overlays cannot remove (their base layer is frozen and
    /// shared); the only callers are the differential maintenance passes of
    /// [`crate::maintain`], which operate on flat maintained stores. The
    /// generation watermark is deliberately *not* decremented — it is a
    /// monotone "has anything grown?" signal, and maintenance tracks its own
    /// change counts.
    pub fn remove(&mut self, pred: Predicate, tuple: &[Symbol]) -> bool {
        debug_assert!(self.base.is_none(), "remove is only valid on flat stores");
        self.preds
            .lookup(pred)
            .is_some_and(|id| self.relations[id.index()].remove(tuple))
    }

    /// A flat deep copy of this store: same predicates (in interning order),
    /// same fact sets, base and overlay merged into a single mutable layer.
    /// This is how a maintained store is born — evaluation runs on a cheap
    /// overlay, and the fixpoint is flattened once so maintenance can remove
    /// tuples (the overlay's base layer is frozen and shared).
    pub fn flatten(&self) -> RelationStore {
        let mut flat = RelationStore::new();
        for (id, pred) in self.preds.iter() {
            let fid = flat.intern(pred);
            for tuple in self.tuples_by_id(id).iter() {
                flat.insert_by_id(fid, tuple.clone());
            }
        }
        flat
    }

    /// Total number of tuples across every predicate (both layers) — the
    /// memory-footprint measure maintained-IDB accounting reports.
    pub fn total_tuples(&self) -> usize {
        self.preds.iter().map(|(id, _)| self.len_of(id)).sum()
    }

    /// The store's insertion watermark: the total number of tuples ever
    /// inserted (duplicates excluded), counting the base layer. Strictly
    /// monotone, so two equal generations guarantee that no relation has
    /// grown in between.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of tuples of a predicate, across both layers.
    pub fn len(&self, pred: Predicate) -> usize {
        self.preds.lookup(pred).map_or(0, |id| self.len_of(id))
    }

    /// Number of tuples of an interned predicate, across both layers.
    #[inline]
    pub fn len_of(&self, id: PredId) -> usize {
        self.base_relation(id).map_or(0, |r| r.tuples.len())
            + self.relations[id.index()].tuples.len()
    }

    /// Iterates over every nonempty relation as `(predicate, tuples)`, in
    /// interning order. The supported way for tests and benches to look at
    /// everything a run derived without reaching into store internals.
    pub fn iter_relations(&self) -> impl Iterator<Item = (Predicate, Tuples<'_>)> {
        self.preds
            .iter()
            .map(|(id, pred)| (pred, self.tuples_by_id(id)))
            .filter(|(_, tuples)| !tuples.is_empty())
    }

    /// True iff no tuples at all are stored (in either layer).
    pub fn is_empty(&self) -> bool {
        self.iter_relations().next().is_none()
    }

    /// The unary relation of a predicate as a borrowed [`UnaryView`] (O(1)
    /// membership, allocation-free), or an arity error if the predicate is
    /// not unary. An absent predicate yields the empty view.
    pub fn unary(&self, pred: Predicate) -> Result<UnaryView<'_>, EngineError> {
        if pred.arity != 1 {
            return Err(EngineError::ArityMismatch { pred, expected: 1 });
        }
        let id = self.preds.lookup(pred);
        Ok(UnaryView {
            base: id.and_then(|id| self.base_relation(id)),
            delta: id.map(|id| &self.relations[id.index()]),
        })
    }

    /// Bulk-loads tuples into a predicate of a **flat** store, reserving
    /// capacity up front. The caller asserts the tuples are pairwise
    /// distinct and not yet present (each still lands in the shape-routed
    /// membership structure once, but is never re-checked or re-inserted);
    /// overlays must go through [`RelationStore::insert`], which deduplicates
    /// against the base.
    pub(crate) fn bulk_load<I: ExactSizeIterator<Item = Tuple>>(
        &mut self,
        pred: Predicate,
        tuples: I,
    ) {
        debug_assert!(self.base.is_none(), "bulk_load is a flat-store fast path");
        let id = self.intern(pred);
        let relation = &mut self.relations[id.index()];
        relation.tuples.reserve(tuples.len());
        match pred.arity {
            1 => {}
            2 => relation.pairs.reserve(tuples.len()),
            _ => relation.set.reserve(tuples.len()),
        }
        for tuple in tuples {
            debug_assert_eq!(pred.arity, tuple.len());
            debug_assert!(!relation.contains(tuple.as_slice()));
            match tuple.as_slice() {
                [a] => {
                    relation.cols.bits.insert(a.id());
                }
                [a, b] => {
                    relation.pairs.insert(pack_pair(a.id(), b.id()));
                }
                _ => {
                    relation.set.insert(tuple.clone());
                }
            }
            relation.cols.push(&tuple);
            relation.tuples.push(tuple);
            self.generation += 1;
        }
    }
}

impl PartialEq for RelationStore {
    /// Set equality per predicate, ignoring empty relations and insertion
    /// order — the natural notion for comparing evaluation results. Layering
    /// is invisible here: an overlay equals the flat store holding the same
    /// fact sets.
    fn eq(&self, other: &RelationStore) -> bool {
        let count = |store: &RelationStore| store.iter_relations().count();
        count(self) == count(other)
            && self.preds.iter().all(|(id, pred)| {
                let mine = self.tuples_by_id(id);
                mine.is_empty()
                    || other.preds.lookup(pred).is_some_and(|oid| {
                        // Both sides are duplicate-free sets, so equal
                        // cardinality plus inclusion is equality.
                        other.len_of(oid) == mine.len()
                            && mine.iter().all(|t| other.contains_by_id(oid, t.as_slice()))
                    })
            })
    }
}

impl Eq for RelationStore {}

/// Loads the extensional database from a [`DatabaseInstance`]: every relation
/// name `R` becomes a binary predicate `R`, and the unary predicate `adom`
/// holds the active domain.
///
/// This is a bulk fast path: facts arrive grouped per relation with exact
/// counts ([`DatabaseInstance::facts_by_relation`]), so each relation is
/// loaded with pre-reserved capacity and a single hash per fact, instead of
/// re-probing the predicate map and the dedup set fact by fact.
pub fn edb_from_instance(db: &DatabaseInstance) -> RelationStore {
    let mut store = RelationStore::new();
    for (rel, pairs) in db.facts_by_relation() {
        let pred = Predicate {
            name: rel.symbol(),
            arity: 2,
        };
        store.bulk_load(
            pred,
            pairs
                .iter()
                .map(|&(k, v)| Tuple::from([k.symbol(), v.symbol()])),
        );
    }
    let adom = Predicate::new("adom", 1);
    store.bulk_load(adom, db.adom().iter().map(|c| Tuple::from([c.symbol()])));
    store
}

/// Loads a shared EDB prefix once and freezes it into an `Arc`-shared base
/// layer. Pair with [`edb_overlay_on`] to serve a whole family of instances
/// extending the prefix with O(delta) work per instance.
pub fn edb_base_from_instance(db: &DatabaseInstance) -> Arc<BaseStore> {
    BaseStore::freeze(edb_from_instance(db))
}

/// Forks an overlay on a frozen EDB base and loads only `delta`'s facts (and
/// active-domain constants) into it. The resulting store holds exactly the
/// fact sets of `edb_from_instance(prefix ∪ delta)` — facts the base already
/// holds are deduplicated away — while sharing the prefix's tuples and
/// committed indexes with every sibling overlay.
pub fn edb_overlay_on(base: &Arc<BaseStore>, delta: &DatabaseInstance) -> RelationStore {
    let mut store = RelationStore::overlay_on(base);
    for (rel, pairs) in delta.facts_by_relation() {
        let pred = Predicate {
            name: rel.symbol(),
            arity: 2,
        };
        let id = store.intern(pred);
        for &(k, v) in &pairs {
            store.insert_by_id(id, Tuple::from([k.symbol(), v.symbol()]));
        }
    }
    let adom = store.intern(Predicate::new("adom", 1));
    for c in delta.adom() {
        store.insert_by_id(adom, Tuple::from([c.symbol()]));
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(name: &str, arity: usize) -> Predicate {
        Predicate::new(name, arity)
    }

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    fn small_db() -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "a", "b");
        db.insert_parsed("R", "b", "c");
        db.insert_parsed("S", "a", "c");
        db
    }

    #[test]
    fn overlay_sees_base_and_own_tuples() {
        let base = edb_base_from_instance(&small_db());
        let mut delta = DatabaseInstance::new();
        delta.insert_parsed("R", "c", "d");
        let store = edb_overlay_on(&base, &delta);
        let r = pred("R", 2);
        assert_eq!(store.len(r), 3);
        assert!(store.contains(r, &[sym("a"), sym("b")])); // base
        assert!(store.contains(r, &[sym("c"), sym("d")])); // overlay
        assert!(!store.contains(r, &[sym("d"), sym("c")]));
        // adom spans both layers: {a, b, c} ∪ {c, d}.
        assert_eq!(store.len(pred("adom", 1)), 4);
        // The overlay equals the fresh load of the union.
        let fresh = edb_from_instance(&small_db().union(&delta));
        assert_eq!(store, fresh);
        assert_eq!(fresh, store);
    }

    #[test]
    fn overlay_inserts_deduplicate_against_the_base() {
        let base = edb_base_from_instance(&small_db());
        let mut store = RelationStore::overlay_on(&base);
        let r = pred("R", 2);
        let before = store.generation();
        assert_eq!(before, base.generation());
        // A base fact: rejected, watermark untouched.
        assert!(!store.insert(r, [sym("a"), sym("b")]));
        assert_eq!(store.generation(), before);
        // A new fact: lands in the overlay exactly once.
        assert!(store.insert(r, [sym("z"), sym("z")]));
        assert!(!store.insert(r, [sym("z"), sym("z")]));
        assert_eq!(store.generation(), before + 1);
        assert_eq!(store.len(r), 3);
    }

    #[test]
    fn tuple_ids_index_the_concatenation() {
        let base = edb_base_from_instance(&small_db());
        let mut store = RelationStore::overlay_on(&base);
        let r = pred("R", 2);
        store.insert(r, [sym("x"), sym("y")]);
        let id = store.pred_id(r).unwrap();
        let view = store.tuples_by_id(id);
        assert_eq!(view.len(), 3);
        assert_eq!(view.base_len(), 2);
        assert_eq!(view.get(0).as_slice(), &[sym("a"), sym("b")]);
        assert_eq!(view.get(2).as_slice(), &[sym("x"), sym("y")]);
        let collected: Vec<_> = view.iter().map(|t| t[0]).collect();
        assert_eq!(collected, vec![sym("a"), sym("b"), sym("x")]);
        // Segments split ranges at the seam.
        let (lo, hi) = view.segments(1, 3);
        assert_eq!(lo.len(), 1);
        assert_eq!(hi.len(), 1);
        let (all_base, none) = view.segments(0, 2);
        assert_eq!(all_base.len(), 2);
        assert!(none.is_empty());
    }

    #[test]
    fn committed_indexes_build_once_and_are_shared() {
        let base = edb_base_from_instance(&small_db());
        let r_id = {
            let probe = RelationStore::overlay_on(&base);
            probe.pred_id(pred("R", 2)).unwrap()
        };
        let (first, built_first) = base.committed_index(r_id, 0b01);
        assert!(built_first);
        let (second, built_second) = base.committed_index(r_id, 0b01);
        assert!(!built_second);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(base.index_builds(), 1);
        // A different mask is a different index.
        let (_, built_other) = base.committed_index(r_id, 0b10);
        assert!(built_other);
        assert_eq!(base.index_builds(), 2);
        // The key-projected entries cover the base tuples.
        let key = Tuple::from([sym("a")]);
        assert_eq!(
            first.entries.get(&key).map(Vec::as_slice),
            Some(&[0u32][..])
        );
    }

    #[test]
    fn unary_view_is_deduplicated_and_layered() {
        let mut flat = RelationStore::new();
        let p = pred("p", 1);
        // Duplicate inserts collapse: the view sees each symbol once.
        assert!(flat.insert(p, [sym("a")]));
        assert!(!flat.insert(p, [sym("a")]));
        assert!(flat.insert(p, [sym("b")]));
        let view = flat.unary(p).unwrap();
        assert_eq!(view.len(), 2);
        assert!(view.contains(sym("a")));
        assert!(!view.contains(sym("c")));
        assert_eq!(view.iter().collect::<Vec<_>>(), vec![sym("a"), sym("b")]);

        // Across layers: base {a, b}, overlay adds c and re-adds a (no-op).
        let base = BaseStore::freeze(flat);
        let mut overlay = RelationStore::overlay_on(&base);
        overlay.insert(p, [sym("c")]);
        overlay.insert(p, [sym("a")]);
        let view = overlay.unary(p).unwrap();
        assert_eq!(view.len(), 3);
        assert_eq!(
            view.iter().collect::<Vec<_>>(),
            vec![sym("a"), sym("b"), sym("c")]
        );

        // Arity misuse is still rejected; absent predicates are empty.
        assert!(overlay.unary(pred("R", 2)).is_err());
        assert!(overlay.unary(pred("absent", 1)).unwrap().is_empty());
    }

    #[test]
    fn column_mirrors_track_tuples_across_layers() {
        let base = edb_base_from_instance(&small_db());
        let mut store = RelationStore::overlay_on(&base);
        let r = pred("R", 2);
        store.insert(r, [sym("c"), sym("d")]);
        let id = store.pred_id(r).unwrap();
        let cols = store.cols2_by_id(id);
        let tuples = store.tuples_by_id(id);
        assert_eq!(cols.base0.len() + cols.delta0.len(), tuples.len());
        for (i, t) in tuples.iter().enumerate() {
            let ((b0, b1), (d0, d1)) = cols.segments(i, i + 1);
            let (c0, c1) = if b0.is_empty() {
                (d0[0], d1[0])
            } else {
                (b0[0], b1[0])
            };
            assert_eq!((c0, c1), (t[0].id(), t[1].id()));
        }
        // Unary mirror + bitset membership across layers.
        let adom = store.intern(pred("adom", 1));
        store.insert_by_id(adom, Tuple::from([sym("zz")]));
        let ones = store.cols1_by_id(adom);
        assert!(ones.contains(sym("a").id())); // base layer
        assert!(ones.contains(sym("zz").id())); // overlay
        assert!(!ones.contains(sym("unseen-symbol").id()));
        assert_eq!(ones.base.len() + ones.delta.len(), store.len_of(adom));
    }

    #[test]
    fn csr_buckets_match_the_hash_index_and_stay_in_id_order() {
        let mut flat = RelationStore::new();
        let r = pred("R", 2);
        for (k, v) in [("a", "x"), ("b", "y"), ("a", "z"), ("a", "w")] {
            flat.insert(r, [sym(k), sym(v)]);
        }
        let id = flat.pred_id(r).unwrap();
        let cols = flat.cols2_by_id(id);
        let csr = CsrIndex::build(cols.delta0, cols.delta1);
        // Bucket values come back in ascending tuple-id (insertion) order.
        assert_eq!(
            csr.bucket(sym("a").id()),
            &[sym("x").id(), sym("z").id(), sym("w").id()]
        );
        assert_eq!(csr.bucket(sym("b").id()), &[sym("y").id()]);
        assert!(csr.bucket(sym("x").id()).is_empty() || sym("x").id() == sym("a").id());

        // The committed base CSR agrees and builds exactly once.
        let base = BaseStore::freeze(flat);
        let builds_before = base.index_builds();
        let (first, built) = base.committed_csr(id, 0);
        assert!(built);
        let (second, built_again) = base.committed_csr(id, 0);
        assert!(!built_again);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(base.index_builds(), builds_before + 1);
        assert_eq!(first.bucket(sym("a").id()).len(), 3);
        // Keyed by the other column.
        let (by_val, _) = base.committed_csr(id, 1);
        assert_eq!(by_val.bucket(sym("z").id()), &[sym("a").id()]);
    }

    #[test]
    fn csr_sparse_fallback_agrees_with_dense() {
        // Force the sparse representation with two far-apart synthetic keys.
        let keys = [0u32, u32::MAX - 1, 0, u32::MAX - 1];
        let vals = [1u32, 2, 3, 4];
        let csr = CsrIndex::build(&keys, &vals);
        assert!(matches!(csr, CsrIndex::Sparse(_)));
        assert_eq!(csr.bucket(0), &[1, 3]);
        assert_eq!(csr.bucket(u32::MAX - 1), &[2, 4]);
        assert!(csr.bucket(7).is_empty());
        let dense = CsrIndex::build(&[5, 7, 5], &[1, 2, 3]);
        assert!(matches!(dense, CsrIndex::Dense { .. }));
        assert_eq!(dense.bucket(5), &[1, 3]);
        assert!(dense.bucket(4).is_empty());
        assert!(dense.bucket(8).is_empty());
    }

    #[test]
    fn freeze_rejects_overlays() {
        let base = edb_base_from_instance(&small_db());
        let overlay = RelationStore::overlay_on(&base);
        let result = std::panic::catch_unwind(move || BaseStore::freeze(overlay));
        assert!(result.is_err(), "re-freezing an overlay must panic");
    }
}
