//! The retained scan-based evaluator.
//!
//! This is the engine's original inner loop — per-candidate environment
//! cloning and full-relation scans — kept as an executable specification:
//! `tests/engine_agreement.rs` checks the indexed engine against it on random
//! programs, and `benches/datalog_engine.rs` measures the gap. Do not use it
//! for real workloads.
//!
//! (Moved verbatim out of `engine.rs`; the old path stays available as
//! [`crate::engine::reference`].)

use std::collections::{BTreeMap, HashSet};

use cqa_core::symbol::Symbol;
use cqa_db::instance::DatabaseInstance;

use crate::ast::{BodyLiteral, Builtin, DlAtom, DlTerm, Predicate, Program, Rule};
use crate::engine::{edb_from_instance, EngineError, RelationStore, Tuple};
use crate::stratify::stratify;

/// The binding environment: a name-keyed map, cloned per candidate.
type Env = BTreeMap<Symbol, Symbol>;

fn resolve(term: &DlTerm, env: &Env) -> Option<Symbol> {
    match term {
        DlTerm::Const(c) => Some(*c),
        DlTerm::Var(v) => env.get(v).copied(),
    }
}

fn match_atom(atom: &DlAtom, tuple: &Tuple, env: &Env) -> Option<Env> {
    let mut new_env = env.clone();
    for (term, &value) in atom.args.iter().zip(tuple.iter()) {
        match term {
            DlTerm::Const(c) => {
                if *c != value {
                    return None;
                }
            }
            DlTerm::Var(v) => match new_env.get(v) {
                Some(&bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    new_env.insert(*v, value);
                }
            },
        }
    }
    Some(new_env)
}

fn eval_builtin(builtin: &Builtin, env: &Env) -> bool {
    let value = |t: &DlTerm| resolve(t, env).expect("builtin arguments must be bound (safe rule)");
    match builtin {
        Builtin::Neq(a, b) => value(a) != value(b),
        Builtin::Eq(a, b) => value(a) == value(b),
        Builtin::KeyConsistent(x1, y1, x2, y2) => value(x1) != value(x2) || value(y1) == value(y2),
    }
}

/// Evaluates a program with the scan-based engine.
pub fn evaluate_scan(
    program: &Program,
    db: &DatabaseInstance,
) -> Result<RelationStore, EngineError> {
    run_scan_on_store(program, edb_from_instance(db))
}

/// Runs the scan-based engine on an explicit EDB store.
pub fn run_scan_on_store(
    program: &Program,
    mut store: RelationStore,
) -> Result<RelationStore, EngineError> {
    for rule in &program.rules {
        if !rule.is_safe() {
            return Err(EngineError::UnsafeRule(rule.to_string()));
        }
    }
    let strat = stratify(program)?;
    for stratum_preds in &strat.strata {
        let stratum: std::collections::BTreeSet<Predicate> =
            stratum_preds.iter().copied().collect();
        let rules: Vec<&Rule> = program
            .rules
            .iter()
            .filter(|r| stratum.contains(&r.head.pred))
            .collect();
        evaluate_stratum(&rules, &stratum, &mut store);
    }
    Ok(store)
}

fn evaluate_stratum(
    rules: &[&Rule],
    stratum: &std::collections::BTreeSet<Predicate>,
    store: &mut RelationStore,
) {
    let mut delta: Vec<(Predicate, Tuple)> = Vec::new();
    for rule in rules {
        for tuple in derive(rule, store, None) {
            if store.insert(rule.head.pred, tuple.clone()) {
                delta.push((rule.head.pred, tuple));
            }
        }
    }
    while !delta.is_empty() {
        let delta_set: HashSet<(Predicate, Tuple)> = delta.drain(..).collect();
        let mut next_delta = Vec::new();
        for rule in rules {
            let recursive_positions: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, l)| matches!(l, BodyLiteral::Positive(a) if stratum.contains(&a.pred)))
                .map(|(i, _)| i)
                .collect();
            if recursive_positions.is_empty() {
                continue;
            }
            for &pos in &recursive_positions {
                for tuple in derive(rule, store, Some((pos, &delta_set))) {
                    if store.insert(rule.head.pred, tuple.clone()) {
                        next_delta.push((rule.head.pred, tuple));
                    }
                }
            }
        }
        delta = next_delta;
    }
}

fn derive(
    rule: &Rule,
    store: &RelationStore,
    delta_at: Option<(usize, &HashSet<(Predicate, Tuple)>)>,
) -> Vec<Tuple> {
    let mut results = Vec::new();
    // Order literals: positives first in given order, then negatives and
    // builtins (bound by then because the rule is safe).
    let mut ordered: Vec<(usize, &BodyLiteral)> = Vec::new();
    for (i, l) in rule.body.iter().enumerate() {
        if matches!(l, BodyLiteral::Positive(_)) {
            ordered.push((i, l));
        }
    }
    for (i, l) in rule.body.iter().enumerate() {
        if !matches!(l, BodyLiteral::Positive(_)) {
            ordered.push((i, l));
        }
    }
    let mut envs: Vec<Env> = vec![Env::new()];
    for (position, literal) in ordered {
        let mut next: Vec<Env> = Vec::new();
        match literal {
            BodyLiteral::Positive(atom) => {
                for env in &envs {
                    match delta_at {
                        Some((delta_pos, delta_set)) if delta_pos == position => {
                            for (pred, tuple) in delta_set {
                                if *pred != atom.pred {
                                    continue;
                                }
                                if let Some(extended) = match_atom(atom, tuple, env) {
                                    next.push(extended);
                                }
                            }
                        }
                        _ => {
                            for tuple in store.tuples(atom.pred) {
                                if let Some(extended) = match_atom(atom, tuple, env) {
                                    next.push(extended);
                                }
                            }
                        }
                    }
                }
            }
            BodyLiteral::Negative(atom) => {
                for env in &envs {
                    let ground: Option<Vec<Symbol>> =
                        atom.args.iter().map(|t| resolve(t, env)).collect();
                    let ground = ground.expect("safe rule: negated atoms are bound");
                    if !store.contains(atom.pred, &ground) {
                        next.push(env.clone());
                    }
                }
            }
            BodyLiteral::Builtin(builtin) => {
                for env in &envs {
                    if eval_builtin(builtin, env) {
                        next.push(env.clone());
                    }
                }
            }
        }
        envs = next;
        if envs.is_empty() {
            return results;
        }
    }
    for env in envs {
        let tuple: Option<Tuple> = rule.head.args.iter().map(|t| resolve(t, &env)).collect();
        results.push(tuple.expect("safe rule: head variables are bound"));
    }
    results
}
