//! Differential maintenance of the materialized IDB across APPEND/RETRACT.
//!
//! PR 8's checkpointed derivation only helps monotone EDB-only strata (~30% of
//! derived tuples for generated CQA programs); everything behind `not key_R`
//! negation still re-derives from scratch on every mutation. This module closes
//! that gap with classic incremental view maintenance:
//!
//! - **Counting maintenance** for strata whose rules have *no positive
//!   same-stratum body factor* (non-recursive within the stratum): we keep an
//!   exact per-tuple derivation count and apply signed delta rules
//!   (telescoping `Σ_j new(F1..Fj-1) · Δ(Fj) · old(Fj+1..Fn)`), so each
//!   mutation costs O(change), with 0→positive transitions inserting and
//!   positive→0 transitions deleting.
//! - **DRed (delete-and-rederive)** for the remaining strata: overdelete
//!   everything reachable from removed/negated-added support, physically
//!   remove it, rederive the survivors from the *new* state, then run a
//!   standard semi-naive insertion pass for the added support.
//!
//! Both paths evaluate rules against a two-state view of the store (OLD =
//! pre-mutation, NEW = post-mutation) reconstructed from per-predicate
//! added/removed delta sets, so the maintained [`RelationStore`] is updated in
//! place without a second copy of the database.
//!
//! The maintained store is a *flat* (non-layered) [`RelationStore`]; it never
//! holds an `Arc` back to the shared base, so LRU eviction of a tenant base
//! drops the maintained state with it.
//!
//! Correctness bar: after [`maintain`] returns [`MaintainVerdict::Maintained`],
//! the store is set-equal to a from-scratch derivation over the mutated EDB.
//! Unit tests in this module and the differential suites in
//! `crates/solver`/`crates/server` enforce byte-identical agreement.

use std::collections::{BTreeMap, VecDeque};

use cqa_core::symbol::Symbol;
use cqa_db::fact::Fact;
use cqa_db::instance::DatabaseInstance;

use crate::ast::{BodyLiteral, Predicate, Program, RuleVars};
use crate::engine::CompiledProgram;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::parallel::EvalStats;
use crate::plan::{CompiledBuiltin, Slot};
use crate::store::{project_onto_mask, PredId, PredTable, RelationStore};
use crate::tuple::Tuple;

/// Fallback threshold: maintenance is considered unprofitable when
/// `change * PROFITABILITY_FACTOR > total_tuples` in the maintained store.
/// Measured crossover data lives in ROADMAP.md.
const PROFITABILITY_FACTOR: usize = 8;

const SKIP_NONE: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Compiled maintenance plan
// ---------------------------------------------------------------------------

/// One body factor of a maintenance rule: a positive or negative relational
/// atom. Builtins are kept separately (they are state-independent).
#[derive(Debug)]
pub(crate) struct MFactor {
    pred: PredId,
    args: Vec<Slot>,
    negated: bool,
    same_stratum: bool,
}

/// A rule compiled for maintenance evaluation: head template + relational
/// factors (positives first, then negatives — rule safety guarantees every
/// negative factor is fully bound by the preceding positives) + builtins.
#[derive(Debug)]
pub(crate) struct MRule {
    head_pred: PredId,
    head: Vec<Slot>,
    factors: Vec<MFactor>,
    builtins: Vec<CompiledBuiltin>,
    num_vars: usize,
}

/// A stratum's maintenance plan: the predicates it defines, its rules, and
/// whether exact counting applies (no rule has a positive same-stratum
/// factor, i.e. the stratum is non-recursive).
#[derive(Debug)]
pub(crate) struct MStratum {
    preds: Vec<PredId>,
    rules: Vec<MRule>,
    counting: bool,
}

/// Per-program maintenance plan, built once in [`CompiledProgram::compile`].
#[derive(Debug, Default)]
pub(crate) struct MaintainProgram {
    strata: Vec<MStratum>,
}

impl MaintainProgram {
    /// Compile per-stratum maintenance plans. `strata` and `numberings` come
    /// straight from stratification/compilation; predicates are interned into
    /// the same [`PredTable`] the engine uses (idempotent — every predicate
    /// here already appears in the engine's plans).
    pub(crate) fn build(
        program: &Program,
        strata: &[Vec<Predicate>],
        numberings: &[RuleVars],
        preds: &mut PredTable,
    ) -> MaintainProgram {
        let mut out = Vec::with_capacity(strata.len());
        for level in strata {
            let members: FxHashSet<Predicate> = level.iter().copied().collect();
            let pred_ids: Vec<PredId> = level.iter().map(|&p| preds.intern(p)).collect();
            let mut rules = Vec::new();
            for (rule, vars) in program.rules.iter().zip(numberings) {
                if !members.contains(&rule.head.pred) {
                    continue;
                }
                let head_pred = preds.intern(rule.head.pred);
                let head: Vec<Slot> = rule.head.args.iter().map(|t| Slot::of(t, vars)).collect();
                let mut factors = Vec::new();
                let mut builtins = Vec::new();
                // Positives in body order first, negatives after: safety
                // guarantees negatives are ground once positives bound.
                for lit in &rule.body {
                    if let BodyLiteral::Positive(atom) = lit {
                        factors.push(MFactor {
                            pred: preds.intern(atom.pred),
                            args: atom.args.iter().map(|t| Slot::of(t, vars)).collect(),
                            negated: false,
                            same_stratum: members.contains(&atom.pred),
                        });
                    }
                }
                for lit in &rule.body {
                    match lit {
                        BodyLiteral::Negative(atom) => {
                            factors.push(MFactor {
                                pred: preds.intern(atom.pred),
                                args: atom.args.iter().map(|t| Slot::of(t, vars)).collect(),
                                negated: true,
                                same_stratum: members.contains(&atom.pred),
                            });
                        }
                        BodyLiteral::Builtin(b) => builtins.push(CompiledBuiltin::of(b, vars)),
                        BodyLiteral::Positive(_) => {}
                    }
                }
                rules.push(MRule {
                    head_pred,
                    head,
                    factors,
                    builtins,
                    num_vars: vars.count(),
                });
            }
            let counting = rules
                .iter()
                .all(|r| r.factors.iter().all(|f| !f.same_stratum || f.negated));
            out.push(MStratum {
                preds: pred_ids,
                rules,
                counting,
            });
        }
        MaintainProgram { strata: out }
    }
}

// ---------------------------------------------------------------------------
// Maintained state
// ---------------------------------------------------------------------------

/// The maintained materialized IDB for one (base, program) resident: a flat
/// relation store holding EDB ∪ IDB after the last maintained mutation, the
/// delta instance it corresponds to, and per-tuple derivation counts for
/// counting-eligible strata.
#[derive(Debug)]
pub struct MaintainedIdb {
    store: RelationStore,
    delta: DatabaseInstance,
    counts: FxHashMap<PredId, FxHashMap<Tuple, u64>>,
}

impl MaintainedIdb {
    /// The maintained store (flat: EDB ∪ IDB, no base layering).
    pub fn store(&self) -> &RelationStore {
        &self.store
    }

    /// Total tuple count in the maintained store (for LRU accounting).
    pub fn total_tuples(&self) -> usize {
        self.store.total_tuples()
    }
}

/// Outcome of a [`maintain`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainVerdict {
    /// The delta is semantically identical to the maintained one — nothing to
    /// do, the maintained store is already current.
    PureHit,
    /// Maintenance ran; the store now reflects the new delta.
    Maintained,
    /// The change ratio made maintenance unprofitable (and fallback was
    /// allowed); the state was left untouched — rebuild from scratch.
    Unprofitable,
}

/// Build the initial maintained state from a freshly derived fixpoint store.
/// Flattens the (possibly layered) fixpoint and runs one counting sweep over
/// counting-eligible strata so later deletions can decrement exact counts.
pub fn bootstrap(
    compiled: &CompiledProgram,
    fixpoint: &RelationStore,
    delta: &DatabaseInstance,
) -> MaintainedIdb {
    let mut store = fixpoint.flatten();
    let mut counts: FxHashMap<PredId, FxHashMap<Tuple, u64>> = FxHashMap::default();
    let pred_map = intern_map(compiled, &mut store);
    let empty_added: Vec<FxHashSet<Tuple>> = vec![FxHashSet::default(); pred_map.len()];
    let empty_removed: Vec<FxHashSet<Tuple>> = vec![FxHashSet::default(); pred_map.len()];
    let mut matcher = Matcher::default();
    for stratum in &compiled.maintain.strata {
        if !stratum.counting || stratum.rules.is_empty() {
            continue;
        }
        let ctx = Ctx {
            store: &store,
            pred_map: &pred_map,
            added: &empty_added,
            removed: &empty_removed,
        };
        for rule in &stratum.rules {
            matcher.prepare(rule);
            let mut found: Vec<(PredId, Tuple)> = Vec::new();
            matcher.join(rule, &ctx, Mode::AllNew, SKIP_NONE, 0, &mut |env| {
                let head: Tuple = rule.head.iter().map(|s| s.resolve(env)).collect();
                found.push((rule.head_pred, head));
                false
            });
            for (pid, head) in found {
                *counts.entry(pid).or_default().entry(head).or_insert(0) += 1;
            }
        }
    }
    MaintainedIdb {
        store,
        delta: delta.clone(),
        counts,
    }
}

/// Differentially maintain `state` from its recorded delta to `delta`.
///
/// `prefix` is the shared base instance (facts in it mask the delta diff —
/// they are present regardless of the delta side). When `force` is false,
/// a change ratio above the profitability threshold returns
/// [`MaintainVerdict::Unprofitable`] with the state untouched.
pub fn maintain(
    compiled: &CompiledProgram,
    state: &mut MaintainedIdb,
    prefix: &DatabaseInstance,
    delta: &DatabaseInstance,
    force: bool,
    stats: &mut EvalStats,
) -> MaintainVerdict {
    let diff = edb_diff(prefix, &state.delta, delta);
    if diff.change == 0 {
        // Semantically identical delta (possibly a different object).
        state.delta = delta.clone();
        stats.maintained_hits += 1;
        return MaintainVerdict::PureHit;
    }
    if !force && diff.change * PROFITABILITY_FACTOR > state.store.total_tuples() {
        return MaintainVerdict::Unprofitable;
    }
    let timer = cqa_obs::Stopwatch::start();

    let pred_map = intern_map(compiled, &mut state.store);
    let npreds = compiled.preds().len();
    let mut added: Vec<FxHashSet<Tuple>> = vec![FxHashSet::default(); npreds];
    let mut removed: Vec<FxHashSet<Tuple>> = vec![FxHashSet::default(); npreds];

    // Apply the EDB diff to the store, tracking effective changes per
    // predicate known to the compiled program. Unknown predicates are still
    // applied so the store mirrors a from-scratch overlay byte for byte.
    for (pred, adds, rems) in &diff.entries {
        let pid = compiled.preds().lookup(*pred);
        for t in adds {
            if state.store.insert(*pred, t.clone()) {
                if let Some(pid) = pid {
                    added[pid.index()].insert(t.clone());
                }
            }
        }
        for t in rems {
            if state.store.remove(*pred, t) {
                if let Some(pid) = pid {
                    removed[pid.index()].insert(t.clone());
                }
            }
        }
    }

    let g0 = state.store.generation();
    let mut matcher = Matcher::default();
    for stratum in &compiled.maintain.strata {
        if stratum.rules.is_empty() {
            continue;
        }
        if stratum.counting {
            counting_pass(
                stratum,
                &mut state.store,
                &mut state.counts,
                compiled.preds(),
                &pred_map,
                &mut added,
                &mut removed,
                &mut matcher,
                stats,
            );
        } else {
            dred_pass(
                stratum,
                &mut state.store,
                compiled.preds(),
                &pred_map,
                &mut added,
                &mut removed,
                &mut matcher,
                stats,
            );
        }
    }

    state.delta = delta.clone();
    stats.maintained_hits += 1;
    stats.tuples_derived += state.store.generation().saturating_sub(g0);
    // For maintained answers the repair pass *is* the evaluation; surface
    // its duration through the same field a fixpoint run would use.
    let ns = timer.elapsed_ns();
    stats.eval_ns += ns;
    cqa_obs::record_span(cqa_obs::Span::MaintainRepair, ns);
    MaintainVerdict::Maintained
}

fn intern_map(compiled: &CompiledProgram, store: &mut RelationStore) -> Vec<PredId> {
    // Maps each compiled-program PredId index to the store's own PredId,
    // mirroring the engine's run-time interning step.
    compiled
        .preds()
        .iter()
        .map(|(_, pred)| store.intern(pred))
        .collect()
}

// ---------------------------------------------------------------------------
// EDB diff
// ---------------------------------------------------------------------------

struct EdbDiff {
    /// Per predicate: (pred, added tuples, removed tuples).
    entries: Vec<(Predicate, Vec<Tuple>, Vec<Tuple>)>,
    change: usize,
}

/// (key, value) constant pair of a binary EDB fact.
type FactPair = (cqa_db::fact::Constant, cqa_db::fact::Constant);

fn edb_diff(prefix: &DatabaseInstance, old: &DatabaseInstance, new: &DatabaseInstance) -> EdbDiff {
    let mut by_rel: BTreeMap<
        cqa_core::symbol::RelName,
        (FxHashSet<FactPair>, FxHashSet<FactPair>),
    > = BTreeMap::new();
    for f in old.facts() {
        by_rel.entry(f.rel).or_default().0.insert((f.key, f.value));
    }
    for f in new.facts() {
        by_rel.entry(f.rel).or_default().1.insert((f.key, f.value));
    }
    let mut entries = Vec::new();
    let mut change = 0usize;
    for (rel, (old_set, new_set)) in &by_rel {
        let mut adds = Vec::new();
        let mut rems = Vec::new();
        for &(k, v) in new_set.iter() {
            if !old_set.contains(&(k, v)) && !prefix.contains(&Fact::new(*rel, k, v)) {
                adds.push(Tuple::from([k.symbol(), v.symbol()]));
            }
        }
        for &(k, v) in old_set.iter() {
            if !new_set.contains(&(k, v)) && !prefix.contains(&Fact::new(*rel, k, v)) {
                rems.push(Tuple::from([k.symbol(), v.symbol()]));
            }
        }
        if adds.is_empty() && rems.is_empty() {
            continue;
        }
        change += adds.len() + rems.len();
        entries.push((
            Predicate {
                name: rel.symbol(),
                arity: 2,
            },
            adds,
            rems,
        ));
    }
    // Active-domain unary predicate: adom(c) for every constant in the
    // combined instance. Diff the delta-side adoms masked by the prefix adom.
    let mut adom_adds = Vec::new();
    let mut adom_rems = Vec::new();
    for c in new.adom().difference(old.adom()) {
        if !prefix.adom().contains(c) {
            adom_adds.push(Tuple::from([c.symbol()]));
        }
    }
    for c in old.adom().difference(new.adom()) {
        if !prefix.adom().contains(c) {
            adom_rems.push(Tuple::from([c.symbol()]));
        }
    }
    if !adom_adds.is_empty() || !adom_rems.is_empty() {
        change += adom_adds.len() + adom_rems.len();
        entries.push((Predicate::new("adom", 1), adom_adds, adom_rems));
    }
    EdbDiff { entries, change }
}

// ---------------------------------------------------------------------------
// Two-state evaluation context
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum StateSel {
    Old,
    New,
}

#[derive(Clone, Copy)]
enum Mode {
    AllOld,
    AllNew,
    /// Telescoping split at factor `j`: factors before `j` are NEW, after
    /// are OLD (the driving factor `j` itself is skipped).
    Split(usize),
}

impl Mode {
    fn state(self, k: usize) -> StateSel {
        match self {
            Mode::AllOld => StateSel::Old,
            Mode::AllNew => StateSel::New,
            Mode::Split(j) => {
                if k < j {
                    StateSel::New
                } else {
                    StateSel::Old
                }
            }
        }
    }
}

struct Ctx<'a> {
    store: &'a RelationStore,
    pred_map: &'a [PredId],
    added: &'a [FxHashSet<Tuple>],
    removed: &'a [FxHashSet<Tuple>],
}

impl Ctx<'_> {
    /// Membership of `tuple` in predicate `pid` under the selected state.
    /// The store always holds the NEW state (phase ordering guarantees this
    /// for same-stratum predicates too: DRed phase 1 runs before any store
    /// mutation of its own stratum, so same-stratum OLD == store there).
    fn member(&self, state: StateSel, pid: PredId, tuple: &[Symbol]) -> bool {
        let spid = self.pred_map[pid.index()];
        let in_store = self.store.contains_by_id(spid, tuple);
        match state {
            StateSel::New => in_store,
            StateSel::Old => {
                (in_store && !self.added[pid.index()].contains(tuple))
                    || self.removed[pid.index()].contains(tuple)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Two-state recursive-join matcher
// ---------------------------------------------------------------------------

/// A lazily extended `(store predicate, bound-mask)` index over cloned
/// tuples. Unlike the engine's append-only indexes, maintained relations
/// shrink (`swap_remove` shuffles positions), so buckets hold tuple *values*
/// and the whole index is invalidated after a removal batch on its predicate.
struct MIndex {
    upto: usize,
    entries: FxHashMap<Tuple, Vec<Tuple>>,
}

fn projection(t: &Tuple, mask: u32) -> Tuple {
    let mut proj = Tuple::default();
    project_onto_mask(t, mask, &mut proj);
    proj
}

#[derive(Default)]
struct MIndexes {
    map: FxHashMap<(usize, u32), MIndex>,
}

impl MIndexes {
    fn bucket(
        &mut self,
        store: &RelationStore,
        spid: PredId,
        mask: u32,
        key: &Tuple,
    ) -> Option<&Vec<Tuple>> {
        let idx = self
            .map
            .entry((spid.index(), mask))
            .or_insert_with(|| MIndex {
                upto: 0,
                entries: FxHashMap::default(),
            });
        let tuples = store.tuples_by_id(spid);
        if idx.upto < tuples.len() {
            for t in tuples.iter().skip(idx.upto) {
                let k = projection(t, mask);
                idx.entries.entry(k).or_default().push(t.clone());
            }
            idx.upto = tuples.len();
        }
        idx.entries.get(key)
    }

    /// Drops every index over `spid` — must be called after any batch of
    /// removals on that predicate and before its next probe.
    fn invalidate(&mut self, spid: PredId) {
        self.map.retain(|&(p, _), _| p != spid.index());
    }
}

/// Recursive-join evaluator over the two-state [`Ctx`] view. One instance is
/// reused across rules and strata within a maintenance run; its indexes are
/// invalidated per predicate when that predicate shrinks.
#[derive(Default)]
struct Matcher {
    env: Vec<Option<Symbol>>,
    indexes: MIndexes,
}

impl Matcher {
    fn prepare(&mut self, rule: &MRule) {
        self.env.clear();
        self.env.resize(rule.num_vars, None);
    }

    /// Binds `tuple` against `args` in sequence: constants and already-bound
    /// variables compare, unbound variables bind. On a comparison failure
    /// earlier bindings from this call may remain — callers reset via their
    /// own binds list or by re-`prepare`ing.
    fn try_bind(&mut self, args: &[Slot], tuple: &[Symbol]) -> bool {
        debug_assert_eq!(args.len(), tuple.len());
        for (slot, &sym) in args.iter().zip(tuple) {
            match slot {
                Slot::Const(c) => {
                    if *c != sym {
                        return false;
                    }
                }
                Slot::Var(v) => match self.env[*v as usize] {
                    Some(b) => {
                        if b != sym {
                            return false;
                        }
                    }
                    None => self.env[*v as usize] = Some(sym),
                },
            }
        }
        true
    }

    /// Joins the rule's factors from `depth` on, skipping the (already
    /// bound) driving factor `skip`, with each factor `k` evaluated in state
    /// `mode.state(k)`. Calls `on_match` at every full assignment satisfying
    /// the builtins; returns true iff the callback requested early exit.
    fn join(
        &mut self,
        rule: &MRule,
        ctx: &Ctx<'_>,
        mode: Mode,
        skip: usize,
        depth: usize,
        on_match: &mut dyn FnMut(&[Option<Symbol>]) -> bool,
    ) -> bool {
        if depth == rule.factors.len() {
            if rule.builtins.iter().all(|b| b.holds(&self.env)) {
                return on_match(&self.env);
            }
            return false;
        }
        if depth == skip {
            return self.join(rule, ctx, mode, skip, depth + 1, on_match);
        }
        let factor = &rule.factors[depth];
        let state = mode.state(depth);
        let arity = factor.args.len();

        if factor.negated {
            // Fully bound by rule safety (positives precede negatives; a
            // driving negative factor binds its own variables).
            let ground: Tuple = factor.args.iter().map(|s| s.resolve(&self.env)).collect();
            if !ctx.member(state, factor.pred, &ground) {
                return self.join(rule, ctx, mode, skip, depth + 1, on_match);
            }
            return false;
        }

        // Positive factor: classify positions.
        let mut mask = 0u32;
        let mut binds: Vec<u32> = Vec::new();
        for (i, slot) in factor.args.iter().enumerate() {
            match slot {
                Slot::Const(_) => mask |= 1 << i,
                Slot::Var(v) => {
                    if self.env[*v as usize].is_some() {
                        mask |= 1 << i;
                    } else if !binds.contains(v) {
                        binds.push(*v);
                    }
                }
            }
        }
        if mask == (1u32 << arity) - 1 {
            let ground: Tuple = factor.args.iter().map(|s| s.resolve(&self.env)).collect();
            if ctx.member(state, factor.pred, &ground) {
                return self.join(rule, ctx, mode, skip, depth + 1, on_match);
            }
            return false;
        }

        let spid = ctx.pred_map[factor.pred.index()];
        let mut candidates: Vec<Tuple> = Vec::new();
        if mask == 0 {
            for t in ctx.store.tuples_by_id(spid).iter() {
                if state == StateSel::New || !ctx.added[factor.pred.index()].contains(&t[..]) {
                    candidates.push(t.clone());
                }
            }
            if state == StateSel::Old {
                candidates.extend(ctx.removed[factor.pred.index()].iter().cloned());
            }
        } else {
            let key: Tuple = factor
                .args
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, s)| s.resolve(&self.env))
                .collect();
            if let Some(bucket) = self.indexes.bucket(ctx.store, spid, mask, &key) {
                match state {
                    StateSel::New => candidates.extend(bucket.iter().cloned()),
                    StateSel::Old => candidates.extend(
                        bucket
                            .iter()
                            .filter(|t| !ctx.added[factor.pred.index()].contains(&t[..]))
                            .cloned(),
                    ),
                }
            }
            if state == StateSel::Old {
                candidates.extend(
                    ctx.removed[factor.pred.index()]
                        .iter()
                        .filter(|t| projection(t, mask) == key)
                        .cloned(),
                );
            }
        }

        for cand in &candidates {
            let ok = self.try_bind(&factor.args, cand);
            let stopped = ok && self.join(rule, ctx, mode, skip, depth + 1, on_match);
            for v in &binds {
                self.env[*v as usize] = None;
            }
            if stopped {
                return true;
            }
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Counting maintenance (non-recursive strata)
// ---------------------------------------------------------------------------

/// Exact-once signed delta evaluation over the telescoping decomposition
/// `Δ(F1 ∧ … ∧ Fn) = Σ_j new(F1..Fj-1) · Δ(Fj) · old(Fj+1..Fn)`, applied to
/// the persistent derivation counts, with 0→positive transitions inserting
/// and positive→0 transitions deleting from the store. Net store changes
/// feed `added`/`removed` for higher strata.
///
/// Assumes head predicates are IDB-only (no rule derives into an EDB
/// relation name) — true for all generated CQA programs.
#[allow(clippy::too_many_arguments)]
fn counting_pass(
    stratum: &MStratum,
    store: &mut RelationStore,
    counts: &mut FxHashMap<PredId, FxHashMap<Tuple, u64>>,
    preds: &PredTable,
    pred_map: &[PredId],
    added: &mut [FxHashSet<Tuple>],
    removed: &mut [FxHashSet<Tuple>],
    matcher: &mut Matcher,
    stats: &mut EvalStats,
) {
    let mut signed: FxHashMap<(PredId, Tuple), i64> = FxHashMap::default();
    for rule in &stratum.rules {
        for j in 0..rule.factors.len() {
            let f = &rule.factors[j];
            let (plus, minus) = if f.negated {
                (&removed[f.pred.index()], &added[f.pred.index()])
            } else {
                (&added[f.pred.index()], &removed[f.pred.index()])
            };
            for (delta_set, sign) in [(plus, 1i64), (minus, -1i64)] {
                if delta_set.is_empty() {
                    continue;
                }
                let driving: Vec<Tuple> = delta_set.iter().cloned().collect();
                for t in &driving {
                    matcher.prepare(rule);
                    if !matcher.try_bind(&rule.factors[j].args, t) {
                        continue;
                    }
                    let ctx = Ctx {
                        store,
                        pred_map,
                        added,
                        removed,
                    };
                    matcher.join(rule, &ctx, Mode::Split(j), j, 0, &mut |env| {
                        let head: Tuple = rule.head.iter().map(|s| s.resolve(env)).collect();
                        *signed.entry((rule.head_pred, head)).or_insert(0) += sign;
                        false
                    });
                }
            }
        }
    }

    let mut shrunk: FxHashSet<PredId> = FxHashSet::default();
    for ((pid, t), d) in signed {
        if d == 0 {
            continue;
        }
        let map = counts.entry(pid).or_default();
        let cur = map.get(&t).copied().unwrap_or(0) as i64;
        let next = cur + d;
        debug_assert!(next >= 0, "derivation count went negative");
        let next = next.max(0) as u64;
        if cur == 0 && next > 0 {
            if store.insert_by_id(pred_map[pid.index()], t.clone()) {
                added[pid.index()].insert(t.clone());
            }
        } else if cur > 0 && next == 0 && store.remove(preds.predicate(pid), &t) {
            removed[pid.index()].insert(t.clone());
            stats.tuples_overdeleted += 1;
            shrunk.insert(pid);
        }
        if next == 0 {
            map.remove(&t);
        } else {
            map.insert(t, next);
        }
    }
    for pid in shrunk {
        matcher.indexes.invalidate(pred_map[pid.index()]);
    }
}

// ---------------------------------------------------------------------------
// DRed (delete-and-rederive) for potentially recursive strata
// ---------------------------------------------------------------------------

/// Classic DRed: overdelete everything reachable from removed/violated
/// support (probing the OLD state), physically remove it, rederive the
/// marked tuples that still hold in the NEW state, then run a semi-naive
/// insertion pass for added support. Net store changes feed
/// `added`/`removed` for higher strata.
#[allow(clippy::too_many_arguments)]
fn dred_pass(
    stratum: &MStratum,
    store: &mut RelationStore,
    preds: &PredTable,
    pred_map: &[PredId],
    added: &mut [FxHashSet<Tuple>],
    removed: &mut [FxHashSet<Tuple>],
    matcher: &mut Matcher,
    stats: &mut EvalStats,
) {
    let mut marked: FxHashMap<PredId, FxHashSet<Tuple>> = FxHashMap::default();
    let mut queue: VecDeque<(PredId, Tuple)> = VecDeque::new();

    // Helper closure shape: drive one delta tuple through factor j of a
    // rule, collecting candidate heads. Written inline (twice for the seed
    // and frontier shapes) to keep borrows simple.

    // Phase 1a: overdelete seeds — lower-stratum removals at positive
    // factors and lower-stratum additions at negative factors, probed
    // against the OLD state (the store is untouched in phase 1, so
    // same-stratum predicates read as OLD too).
    for rule in &stratum.rules {
        for j in 0..rule.factors.len() {
            let f = &rule.factors[j];
            if f.same_stratum {
                continue;
            }
            let drive = if f.negated {
                &added[f.pred.index()]
            } else {
                &removed[f.pred.index()]
            };
            if drive.is_empty() {
                continue;
            }
            let driving: Vec<Tuple> = drive.iter().cloned().collect();
            for t in &driving {
                matcher.prepare(rule);
                if !matcher.try_bind(&rule.factors[j].args, t) {
                    continue;
                }
                let ctx = Ctx {
                    store,
                    pred_map,
                    added,
                    removed,
                };
                let mut heads: Vec<Tuple> = Vec::new();
                matcher.join(rule, &ctx, Mode::AllOld, j, 0, &mut |env| {
                    heads.push(rule.head.iter().map(|s| s.resolve(env)).collect());
                    false
                });
                let spid = pred_map[rule.head_pred.index()];
                for h in heads {
                    if store.contains_by_id(spid, &h)
                        && marked.entry(rule.head_pred).or_default().insert(h.clone())
                    {
                        queue.push_back((rule.head_pred, h));
                    }
                }
            }
        }
    }

    // Phase 1b: propagate over-deletion through positive same-stratum
    // factors of already-marked tuples.
    while let Some((pid, t)) = queue.pop_front() {
        for rule in &stratum.rules {
            for j in 0..rule.factors.len() {
                let f = &rule.factors[j];
                if f.negated || !f.same_stratum || f.pred != pid {
                    continue;
                }
                matcher.prepare(rule);
                if !matcher.try_bind(&f.args, &t) {
                    continue;
                }
                let ctx = Ctx {
                    store,
                    pred_map,
                    added,
                    removed,
                };
                let mut heads: Vec<Tuple> = Vec::new();
                matcher.join(rule, &ctx, Mode::AllOld, j, 0, &mut |env| {
                    heads.push(rule.head.iter().map(|s| s.resolve(env)).collect());
                    false
                });
                let spid = pred_map[rule.head_pred.index()];
                for h in heads {
                    if store.contains_by_id(spid, &h)
                        && marked.entry(rule.head_pred).or_default().insert(h.clone())
                    {
                        queue.push_back((rule.head_pred, h));
                    }
                }
            }
        }
    }

    // Phase 2: physically remove the overdeleted tuples, then drop their
    // (now position-shuffled) indexes.
    for (pid, set) in &marked {
        let pred = preds.predicate(*pid);
        for t in set {
            if store.remove(pred, t) {
                stats.tuples_overdeleted += 1;
            }
        }
    }
    for pid in &stratum.preds {
        matcher.indexes.invalidate(pred_map[pid.index()]);
    }

    let mut inserted: FxHashMap<PredId, FxHashSet<Tuple>> = FxHashMap::default();

    // Phase 3: rederive — sweep the still-absent marked tuples for a
    // NEW-state derivation (early exit at the first one), looping because a
    // rederived tuple can support another marked tuple.
    loop {
        let mut to_insert: Vec<(PredId, Tuple)> = Vec::new();
        for (pid, set) in &marked {
            let spid = pred_map[pid.index()];
            for t in set {
                if store.contains_by_id(spid, t) {
                    continue;
                }
                let mut found = false;
                for rule in &stratum.rules {
                    if rule.head_pred != *pid {
                        continue;
                    }
                    matcher.prepare(rule);
                    if !matcher.try_bind(&rule.head, t) {
                        continue;
                    }
                    let ctx = Ctx {
                        store,
                        pred_map,
                        added,
                        removed,
                    };
                    if matcher.join(rule, &ctx, Mode::AllNew, SKIP_NONE, 0, &mut |_| true) {
                        found = true;
                        break;
                    }
                }
                if found {
                    to_insert.push((*pid, t.clone()));
                }
            }
        }
        if to_insert.is_empty() {
            break;
        }
        for (pid, t) in to_insert {
            if store.insert_by_id(pred_map[pid.index()], t.clone()) {
                stats.tuples_rederived += 1;
                inserted.entry(pid).or_default().insert(t);
            }
        }
    }

    // Phase 4a: insertion seeds — lower-stratum additions at positive
    // factors and lower-stratum removals at negative factors, probed
    // against the NEW state.
    let mut ins_queue: VecDeque<(PredId, Tuple)> = VecDeque::new();
    for rule in &stratum.rules {
        for j in 0..rule.factors.len() {
            let f = &rule.factors[j];
            if f.same_stratum {
                continue;
            }
            let drive = if f.negated {
                &removed[f.pred.index()]
            } else {
                &added[f.pred.index()]
            };
            if drive.is_empty() {
                continue;
            }
            let driving: Vec<Tuple> = drive.iter().cloned().collect();
            for t in &driving {
                matcher.prepare(rule);
                if !matcher.try_bind(&rule.factors[j].args, t) {
                    continue;
                }
                let ctx = Ctx {
                    store,
                    pred_map,
                    added,
                    removed,
                };
                let mut heads: Vec<Tuple> = Vec::new();
                matcher.join(rule, &ctx, Mode::AllNew, j, 0, &mut |env| {
                    heads.push(rule.head.iter().map(|s| s.resolve(env)).collect());
                    false
                });
                let spid = pred_map[rule.head_pred.index()];
                for h in heads {
                    if store.insert_by_id(spid, h.clone()) {
                        inserted
                            .entry(rule.head_pred)
                            .or_default()
                            .insert(h.clone());
                        ins_queue.push_back((rule.head_pred, h));
                    }
                }
            }
        }
    }

    // Phase 4b: semi-naive frontier over positive same-stratum factors.
    while let Some((pid, t)) = ins_queue.pop_front() {
        for rule in &stratum.rules {
            for j in 0..rule.factors.len() {
                let f = &rule.factors[j];
                if f.negated || !f.same_stratum || f.pred != pid {
                    continue;
                }
                matcher.prepare(rule);
                if !matcher.try_bind(&f.args, &t) {
                    continue;
                }
                let ctx = Ctx {
                    store,
                    pred_map,
                    added,
                    removed,
                };
                let mut heads: Vec<Tuple> = Vec::new();
                matcher.join(rule, &ctx, Mode::AllNew, j, 0, &mut |env| {
                    heads.push(rule.head.iter().map(|s| s.resolve(env)).collect());
                    false
                });
                let spid = pred_map[rule.head_pred.index()];
                for h in heads {
                    if store.insert_by_id(spid, h.clone()) {
                        inserted
                            .entry(rule.head_pred)
                            .or_default()
                            .insert(h.clone());
                        ins_queue.push_back((rule.head_pred, h));
                    }
                }
            }
        }
    }

    // Net deltas for higher strata: tuples genuinely gone (marked, never
    // came back) and tuples genuinely new (inserted, not merely restored).
    for (pid, set) in &inserted {
        let was_marked = marked.get(pid);
        for t in set {
            if !was_marked.is_some_and(|m| m.contains(t)) {
                added[pid.index()].insert(t.clone());
            }
        }
    }
    for (pid, set) in &marked {
        let spid = pred_map[pid.index()];
        for t in set {
            if !store.contains_by_id(spid, t) {
                removed[pid.index()].insert(t.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Builtin, DlAtom, DlTerm, Rule};
    use crate::parallel::EvalOptions;
    use crate::store::{edb_base_from_instance, edb_overlay_on};

    fn pred(name: &str, arity: usize) -> Predicate {
        Predicate::new(name, arity)
    }

    fn atom(name: &str, vars: &[&str]) -> DlAtom {
        DlAtom::new(
            pred(name, vars.len()),
            vars.iter().map(|v| DlTerm::var(v)).collect(),
        )
    }

    fn reachability_program() -> Program {
        let mut p = Program::new();
        p.declare_edb(pred("E", 2));
        p.add_rule(Rule::new(
            atom("path", &["X", "Y"]),
            vec![BodyLiteral::Positive(atom("E", &["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![
                BodyLiteral::Positive(atom("path", &["X", "Y"])),
                BodyLiteral::Positive(atom("E", &["Y", "Z"])),
            ],
        ));
        p
    }

    fn negation_program() -> Program {
        let mut p = reachability_program();
        p.declare_edb(pred("adom", 1));
        p.add_rule(Rule::new(
            atom("unreach", &["X", "Y"]),
            vec![
                BodyLiteral::Positive(atom("adom", &["X"])),
                BodyLiteral::Positive(atom("adom", &["Y"])),
                BodyLiteral::Negative(atom("path", &["X", "Y"])),
                BodyLiteral::Builtin(Builtin::Neq(DlTerm::var("X"), DlTerm::var("Y"))),
            ],
        ));
        p
    }

    /// Bootstraps on `deltas[0]` and maintains through the rest, asserting
    /// set-equality with a from-scratch overlay derivation at every step.
    /// Returns the accumulated stats.
    fn check_sequence(
        program: &Program,
        prefix: &DatabaseInstance,
        deltas: &[DatabaseInstance],
    ) -> EvalStats {
        let compiled = CompiledProgram::compile(program).unwrap();
        let base = edb_base_from_instance(prefix);
        let opts = EvalOptions::sequential();
        let mut stats = EvalStats::new(1);
        let fix = compiled.run_on_store_with(edb_overlay_on(&base, &deltas[0]), &opts);
        let mut state = bootstrap(&compiled, &fix, &deltas[0]);
        assert_eq!(state.store(), &fix, "bootstrap flatten changed contents");
        for (g, delta) in deltas.iter().enumerate().skip(1) {
            let verdict = maintain(&compiled, &mut state, prefix, delta, true, &mut stats);
            assert_ne!(
                verdict,
                MaintainVerdict::Unprofitable,
                "forced maintenance must not fall back"
            );
            let scratch = compiled.run_on_store_with(edb_overlay_on(&base, delta), &opts);
            assert_eq!(
                state.store(),
                &scratch,
                "maintained store diverged from from-scratch at generation {g}"
            );
        }
        stats
    }

    fn db(facts: &[(&str, &str, &str)]) -> DatabaseInstance {
        let mut d = DatabaseInstance::new();
        for &(r, k, v) in facts {
            d.insert_parsed(r, k, v);
        }
        d
    }

    #[test]
    fn append_only_on_recursive_stratum() {
        let deltas = [
            db(&[("E", "a", "b")]),
            db(&[("E", "a", "b"), ("E", "b", "c")]),
            db(&[("E", "a", "b"), ("E", "b", "c"), ("E", "c", "d")]),
        ];
        let stats = check_sequence(&reachability_program(), &DatabaseInstance::new(), &deltas);
        assert_eq!(stats.maintained_hits, 2);
        assert_eq!(stats.tuples_overdeleted, 0);
    }

    #[test]
    fn retract_on_recursive_stratum_overdeletes_and_rederives() {
        // Chain a->b->c->d plus shortcut a->c: retracting b->c kills
        // path(b,c), path(b,d), path(a,b)->... but a->c keeps path(a,c),
        // path(a,d) alive — the rederive phase must restore them.
        let full = db(&[
            ("E", "a", "b"),
            ("E", "b", "c"),
            ("E", "c", "d"),
            ("E", "a", "c"),
        ]);
        let retracted = db(&[("E", "a", "b"), ("E", "c", "d"), ("E", "a", "c")]);
        let stats = check_sequence(
            &reachability_program(),
            &DatabaseInstance::new(),
            &[full.clone(), retracted, full],
        );
        assert!(stats.tuples_overdeleted > 0, "retract must overdelete");
        assert!(stats.tuples_rederived > 0, "shortcut paths must rederive");
    }

    #[test]
    fn negation_stratum_tracks_lower_stratum_deltas() {
        // unreach = adom x adom \ path, X != Y: appending an edge shrinks
        // unreach (counting deletions driven by path additions); retracting
        // grows it back.
        let g0 = db(&[("E", "a", "b"), ("E", "b", "c")]);
        let g1 = db(&[("E", "a", "b"), ("E", "b", "c"), ("E", "c", "d")]);
        let stats = check_sequence(
            &negation_program(),
            &DatabaseInstance::new(),
            &[g0.clone(), g1, g0],
        );
        assert!(stats.tuples_overdeleted > 0);
    }

    #[test]
    fn retract_then_reappend_same_fact_round_trips() {
        let a = db(&[("E", "a", "b"), ("E", "b", "c"), ("E", "c", "a")]);
        let b = db(&[("E", "a", "b"), ("E", "c", "a")]);
        check_sequence(
            &negation_program(),
            &DatabaseInstance::new(),
            &[a.clone(), b.clone(), a.clone(), b, a],
        );
    }

    #[test]
    fn prefix_facts_mask_the_delta_diff() {
        // A fact present in the shared prefix never registers as a change,
        // whichever side of the delta it appears on.
        let prefix = db(&[("E", "a", "b")]);
        let deltas = [
            db(&[("E", "a", "b"), ("E", "b", "c")]),
            db(&[("E", "b", "c")]),
            db(&[("E", "a", "b"), ("E", "b", "c"), ("E", "c", "d")]),
        ];
        check_sequence(&negation_program(), &prefix, &deltas);
    }

    #[test]
    fn identical_delta_is_a_pure_hit() {
        let compiled = CompiledProgram::compile(&reachability_program()).unwrap();
        let prefix = DatabaseInstance::new();
        let base = edb_base_from_instance(&prefix);
        let delta = db(&[("E", "a", "b"), ("E", "b", "c")]);
        let fix =
            compiled.run_on_store_with(edb_overlay_on(&base, &delta), &EvalOptions::sequential());
        let mut state = bootstrap(&compiled, &fix, &delta);
        let mut stats = EvalStats::new(1);
        let verdict = maintain(
            &compiled,
            &mut state,
            &prefix,
            &delta.clone(),
            false,
            &mut stats,
        );
        assert_eq!(verdict, MaintainVerdict::PureHit);
        assert_eq!(stats.maintained_hits, 1);
        assert_eq!(stats.tuples_overdeleted + stats.tuples_rederived, 0);
    }

    #[test]
    fn large_change_ratio_is_unprofitable_unless_forced() {
        let compiled = CompiledProgram::compile(&reachability_program()).unwrap();
        let prefix = DatabaseInstance::new();
        let base = edb_base_from_instance(&prefix);
        let delta = db(&[("E", "a", "b")]);
        let fix =
            compiled.run_on_store_with(edb_overlay_on(&base, &delta), &EvalOptions::sequential());
        let mut state = bootstrap(&compiled, &fix, &delta);
        // Replace nearly everything: the change dwarfs the resident store.
        let replacement = db(&[("E", "x", "y"), ("E", "y", "z"), ("E", "z", "w")]);
        let mut stats = EvalStats::new(1);
        let before = state.store().total_tuples();
        let verdict = maintain(
            &compiled,
            &mut state,
            &prefix,
            &replacement,
            false,
            &mut stats,
        );
        assert_eq!(verdict, MaintainVerdict::Unprofitable);
        assert_eq!(
            state.store().total_tuples(),
            before,
            "unprofitable fallback must leave the state untouched"
        );
        assert_eq!(stats.maintained_hits, 0);
        // Forced, the same mutation maintains correctly.
        let verdict = maintain(
            &compiled,
            &mut state,
            &prefix,
            &replacement,
            true,
            &mut stats,
        );
        assert_eq!(verdict, MaintainVerdict::Maintained);
        let scratch = compiled.run_on_store_with(
            edb_overlay_on(&base, &replacement),
            &EvalOptions::sequential(),
        );
        assert_eq!(state.store(), &scratch);
    }

    #[test]
    fn random_interleaved_mutations_agree_with_scratch() {
        // Pseudo-random generation sequences over a small edge universe,
        // retract-heavy by construction, against the negation program (one
        // DRed stratum + one counting stratum).
        let mut s = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let universe: Vec<(String, String)> = (0..5)
            .flat_map(|i| (0..5).map(move |j| (format!("v{i}"), format!("v{j}"))))
            .collect();
        for _ in 0..5 {
            let mut present: Vec<bool> = universe.iter().map(|_| next() % 3 == 0).collect();
            let snapshot = |present: &[bool]| {
                let mut d = DatabaseInstance::new();
                for (on, (a, b)) in present.iter().zip(&universe) {
                    if *on {
                        d.insert_parsed("E", a, b);
                    }
                }
                d
            };
            let mut deltas = vec![snapshot(&present)];
            for _ in 0..6 {
                // Toggle a handful of edges, biased toward retraction.
                for _ in 0..3 {
                    let i = (next() % universe.len() as u64) as usize;
                    present[i] = if present[i] { false } else { next() % 2 == 0 };
                }
                deltas.push(snapshot(&present));
            }
            check_sequence(&negation_program(), &DatabaseInstance::new(), &deltas);
        }
    }
}
