//! Caching of compiled programs, keyed by program identity.
//!
//! Planning a program ([`CompiledProgram::compile`]) — safety checks,
//! stratification, variable numbering and greedy join ordering — is pure in
//! the program text, so repeated evaluations of the same program (the normal
//! case for certain-answer workloads, which run one generated CQA program
//! per query against many instances) can share a single compiled plan. A
//! [`PlanCache`] maps a [`Program`] (structural identity: rules plus EDB
//! declarations) to its `Arc<CompiledProgram>`; the process-wide
//! [`PlanCache::global`] instance backs
//! [`crate::cqa_program::generate_program`], so every generated program is
//! planned at most once per process.
//!
//! The cache is `Sync` and its payloads are immutable, so the parallel batch
//! driver (`cqa-solver`'s `CertaintySession::certain_batch`) and the
//! parallel stratum evaluator ([`crate::parallel`]) share compiled plans
//! across worker threads without copying; racing compilations of the same
//! program are collapsed to whichever insertion wins.
//!
//! Plan caching composes with store layering ([`crate::store`]): a compiled
//! program's `(pred, mask)` index slots are stable across runs, and on
//! family workloads the *contents* of the slots over shared-base predicates
//! are cached too — committed once per [`crate::store::BaseStore`] and
//! attached by every sibling run — so a warm family session re-plans
//! nothing and re-indexes only per-request deltas.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::ast::Program;
use crate::engine::{CompiledProgram, EngineError};

/// A cache of compiled programs keyed by program identity.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<Program, Arc<CompiledProgram>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The process-wide cache.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    /// Returns the cached compiled plan for `program`, compiling (and
    /// caching) it on first sight. Compilation failures are returned and not
    /// cached.
    pub fn get_or_compile(&self, program: &Program) -> Result<Arc<CompiledProgram>, EngineError> {
        if let Some(hit) = self.plans.lock().expect("plan cache poisoned").get(program) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Compile outside the lock; a racing thread may compile the same
        // program, in which case the first insertion wins.
        let compiled = Arc::new(CompiledProgram::compile(program)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        Ok(Arc::clone(plans.entry(program.clone()).or_insert(compiled)))
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        self.plans.lock().expect("plan cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BodyLiteral, DlAtom, DlTerm, Predicate, Rule};

    fn tc_program(edge: &str) -> Program {
        let atom = |name: &str, vars: [&str; 2]| {
            DlAtom::new(
                Predicate::new(name, 2),
                vars.iter().map(|v| DlTerm::var(v)).collect(),
            )
        };
        let mut p = Program::new();
        p.declare_edb(Predicate::new(edge, 2));
        p.add_rule(Rule::new(
            atom("path", ["X", "Y"]),
            vec![BodyLiteral::Positive(atom(edge, ["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            atom("path", ["X", "Z"]),
            vec![
                BodyLiteral::Positive(atom("path", ["X", "Y"])),
                BodyLiteral::Positive(atom(edge, ["Y", "Z"])),
            ],
        ));
        p
    }

    #[test]
    fn identical_programs_share_one_compilation() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile(&tc_program("E")).unwrap();
        let b = cache.get_or_compile(&tc_program("E")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_programs_compile_separately() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile(&tc_program("E")).unwrap();
        let b = cache.get_or_compile(&tc_program("F")).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_collapse_to_one_cached_plan() {
        // Worker threads hammering the cache with the same program must all
        // end up sharing a single Arc (one cached entry), and the cache must
        // stay usable from multiple threads (it is Sync by construction).
        let cache = PlanCache::new();
        let plans: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| cache.get_or_compile(&tc_program("E")).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        for pair in plans.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let mut bad = Program::new();
        bad.add_rule(Rule::new(
            DlAtom::new(Predicate::new("p", 1), vec![DlTerm::var("X")]),
            vec![],
        ));
        let cache = PlanCache::new();
        assert!(cache.get_or_compile(&bad).is_err());
        assert!(cache.is_empty());
    }
}
