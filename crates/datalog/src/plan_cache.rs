//! Caching of demand-transformed, compiled programs, keyed by the
//! *untransformed* program and demand mode.
//!
//! Planning a program ([`CompiledProgram::compile`]) — safety checks,
//! stratification, variable numbering and greedy join ordering — and the
//! demand transformation that precedes it ([`crate::demand::transform`]) are
//! both pure in the program text, so repeated evaluations of the same
//! program (the normal case for certain-answer workloads, which run one
//! generated CQA program per query against many instances) can share one
//! transformed program and one compiled plan. A [`PlanCache`] maps a
//! [`Program`] (structural identity: rules plus EDB declarations) to:
//!
//! * one plain `Arc<CompiledProgram>` for callers that evaluate the program
//!   exactly as written ([`PlanCache::get_or_compile`]), and
//! * one [`PlannedProgram`] per [`DemandMode`] — the transformed program,
//!   its [`DemandReport`] and the compiled plan, cached as a unit by
//!   [`PlanCache::get_or_plan`] so warm lookups skip the transformation
//!   *and* the compilation.
//!
//! Keying by the untransformed text matters for latency: program
//! *generation* is cheap (building the Lemma 14 rules), but the magic
//! rewrite's adornment fixpoint and the join planner are not, and both
//! would otherwise run on every per-call dispatch. The process-wide
//! [`PlanCache::global`] instance backs
//! [`crate::cqa_program::generate_program`], so every generated program is
//! transformed and planned at most once per process and demand setting.
//!
//! The cache is `Sync` and its payloads are immutable, so the parallel batch
//! driver (`cqa-solver`'s `CertaintySession::certain_batch`) and the
//! parallel stratum evaluator ([`crate::parallel`]) share compiled plans
//! across worker threads without copying; racing compilations of the same
//! program are collapsed to whichever insertion wins.
//!
//! Plan caching composes with store layering ([`crate::store`]): a compiled
//! program's `(pred, mask)` index slots are stable across runs, and on
//! family workloads the *contents* of the slots over shared-base predicates
//! are cached too — committed once per [`crate::store::BaseStore`] and
//! attached by every sibling run — so a warm family session re-plans
//! nothing and re-indexes only per-request deltas.
//!
//! The cache also anchors **checkpoint identity**: a base store's cached
//! checkpoint variants ([`crate::store::BaseStore::checkpoint`]) are keyed
//! by the compiled program's `Arc` pointer. That key is sound precisely
//! because this cache deduplicates — structurally equal programs resolve to
//! the *same* `Arc<CompiledProgram>` for the life of the cache (the global
//! instance never evicts), so a pointer uniquely names a plan, never a
//! freed-and-reused allocation, and re-generating a query's program on a
//! later request finds the same checkpoint instead of building a twin.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::ast::{Predicate, Program};
use crate::demand::{self, DemandMode, DemandReport};
use crate::engine::{CompiledProgram, EngineError};

/// A demand-transformed program bundled with everything evaluation needs:
/// the transformed rules, the report of what the transformation did, and
/// the compiled plan. Cached as a unit so a warm [`PlanCache::get_or_plan`]
/// is a single hash lookup.
#[derive(Debug)]
pub struct PlannedProgram {
    /// The program as transformed under the requested mode (with
    /// [`DemandMode::Off`] this is the input program unchanged).
    pub program: Arc<Program>,
    /// The goal predicate the transformation was directed at.
    pub goal: Predicate,
    /// What the transformation did (all zero for [`DemandMode::Off`]).
    pub report: DemandReport,
    /// The compiled evaluation plan for `program`.
    pub compiled: Arc<CompiledProgram>,
}

/// A cache of transformed/compiled programs keyed by untransformed program
/// identity *and* demand mode. The mode is part of the key so one setting's
/// entries can never collide with another's — a magic rewrite that degrades
/// to pruning (nothing restrictable) yields a program structurally identical
/// to the prune-mode one, and the two must still occupy distinct entries or
/// warm lookups under one setting would observe the other setting's hit/miss
/// accounting.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<Program, Slots>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Per-program cache payload: the plain (as-written) compilation plus one
/// demand-planned entry per mode.
#[derive(Debug, Default)]
struct Slots {
    plain: Option<Arc<CompiledProgram>>,
    planned: [Option<Arc<PlannedProgram>>; 3],
}

fn mode_slot(mode: DemandMode) -> usize {
    match mode {
        DemandMode::Off => 0,
        DemandMode::Prune => 1,
        DemandMode::Magic => 2,
    }
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The process-wide cache.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    /// Returns the cached compiled plan for `program` exactly as written (no
    /// demand transformation), compiling (and caching) it on first sight.
    pub fn get_or_compile(&self, program: &Program) -> Result<Arc<CompiledProgram>, EngineError> {
        if let Some(hit) = self
            .plans
            .lock()
            .expect("plan cache poisoned")
            .get(program)
            .and_then(|slots| slots.plain.as_ref())
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Compile outside the lock; a racing thread may compile the same
        // program, in which case the first insertion wins.
        let timer = cqa_obs::Stopwatch::start();
        let compiled = Arc::new(CompiledProgram::compile(program)?);
        cqa_obs::record_span(cqa_obs::Span::PlanCompile, timer.elapsed_ns());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        Ok(Arc::clone(
            plans
                .entry(program.clone())
                .or_default()
                .plain
                .get_or_insert(compiled),
        ))
    }

    /// Returns the cached [`PlannedProgram`] for `program` demand-transformed
    /// toward `goal` under `mode`, transforming and compiling on first sight.
    /// Warm lookups skip both. Transformation/compilation failures are
    /// returned and not cached.
    ///
    /// The key is `(program, mode)` — the goal is *not* part of it, because
    /// for the generated CQA programs the goal (`o/1`) is a function of the
    /// program text. Callers that direct one program text at two different
    /// goals must use separate caches (debug builds assert against it).
    pub fn get_or_plan(
        &self,
        program: &Program,
        goal: Predicate,
        mode: DemandMode,
    ) -> Result<Arc<PlannedProgram>, EngineError> {
        let slot = mode_slot(mode);
        if let Some(hit) = self
            .plans
            .lock()
            .expect("plan cache poisoned")
            .get(program)
            .and_then(|slots| slots.planned[slot].as_ref())
        {
            debug_assert_eq!(
                hit.goal, goal,
                "one program text demand-planned toward two goals in one cache"
            );
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Transform and compile outside the lock; a racing thread may do the
        // same work, in which case the first insertion wins.
        let timer = cqa_obs::Stopwatch::start();
        let (transformed, report) = demand::transform(program, goal, mode);
        let compiled = Arc::new(CompiledProgram::compile(&transformed)?);
        cqa_obs::record_span(cqa_obs::Span::PlanCompile, timer.elapsed_ns());
        let planned = Arc::new(PlannedProgram {
            program: Arc::new(transformed),
            goal,
            report,
            compiled,
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        Ok(Arc::clone(
            plans.entry(program.clone()).or_default().planned[slot].get_or_insert(planned),
        ))
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (transform-and-compile runs) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached entries (plain and per-mode planned entries count
    /// separately).
    pub fn len(&self) -> usize {
        self.plans
            .lock()
            .expect("plan cache poisoned")
            .values()
            .map(|slots| slots.plain.iter().count() + slots.planned.iter().flatten().count())
            .sum()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        self.plans.lock().expect("plan cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BodyLiteral, DlAtom, DlTerm, Predicate, Rule};

    fn tc_program(edge: &str) -> Program {
        let atom = |name: &str, vars: [&str; 2]| {
            DlAtom::new(
                Predicate::new(name, 2),
                vars.iter().map(|v| DlTerm::var(v)).collect(),
            )
        };
        let mut p = Program::new();
        p.declare_edb(Predicate::new(edge, 2));
        p.add_rule(Rule::new(
            atom("path", ["X", "Y"]),
            vec![BodyLiteral::Positive(atom(edge, ["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            atom("path", ["X", "Z"]),
            vec![
                BodyLiteral::Positive(atom("path", ["X", "Y"])),
                BodyLiteral::Positive(atom(edge, ["Y", "Z"])),
            ],
        ));
        p
    }

    fn goal() -> Predicate {
        Predicate::new("path", 2)
    }

    #[test]
    fn identical_programs_share_one_compilation() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile(&tc_program("E")).unwrap();
        let b = cache.get_or_compile(&tc_program("E")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_programs_compile_separately() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile(&tc_program("E")).unwrap();
        let b = cache.get_or_compile(&tc_program("F")).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_collapse_to_one_cached_plan() {
        // Worker threads hammering the cache with the same program must all
        // end up sharing a single Arc (one cached entry), and the cache must
        // stay usable from multiple threads (it is Sync by construction).
        let cache = PlanCache::new();
        let plans: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| cache.get_or_compile(&tc_program("E")).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        for pair in plans.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }

    #[test]
    fn demand_modes_occupy_distinct_entries() {
        // The same program text under different demand settings must neither
        // share an entry nor cross-talk on hit/miss accounting: each mode
        // sees exactly one cold miss and then warm hits.
        let cache = PlanCache::new();
        for mode in [DemandMode::Off, DemandMode::Prune, DemandMode::Magic] {
            let cold = cache.get_or_plan(&tc_program("E"), goal(), mode).unwrap();
            let warm = cache.get_or_plan(&tc_program("E"), goal(), mode).unwrap();
            assert!(
                Arc::ptr_eq(&cold, &warm),
                "{mode}: warm lookup re-transformed"
            );
            assert_eq!(cold.goal, goal());
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.len(), 3);
        // Entries are distinct plans, not aliases of one compilation.
        let off = cache
            .get_or_plan(&tc_program("E"), goal(), DemandMode::Off)
            .unwrap();
        let magic = cache
            .get_or_plan(&tc_program("E"), goal(), DemandMode::Magic)
            .unwrap();
        assert!(!Arc::ptr_eq(&off.compiled, &magic.compiled));
    }

    #[test]
    fn warm_planned_lookups_skip_the_transformation() {
        // The whole point of keying by the *untransformed* program: a warm
        // get_or_plan must hand back the same transformed-program Arc (no
        // re-transform, no re-compile), and its report must be the
        // transformation's report, not a recount.
        let cache = PlanCache::new();
        let cold = cache
            .get_or_plan(&tc_program("E"), goal(), DemandMode::Magic)
            .unwrap();
        let warm = cache
            .get_or_plan(&tc_program("E"), goal(), DemandMode::Magic)
            .unwrap();
        assert!(Arc::ptr_eq(&cold.program, &warm.program));
        assert!(Arc::ptr_eq(&cold.compiled, &warm.compiled));
        assert_eq!(cold.report, warm.report);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn plain_and_planned_off_entries_are_independent() {
        // get_or_compile (plain slot) and get_or_plan(Off) (mode slot 0) are
        // distinct entries on purpose: the APIs have different return shapes
        // and neither should perturb the other's accounting.
        let cache = PlanCache::new();
        let plain = cache.get_or_compile(&tc_program("E")).unwrap();
        let planned = cache
            .get_or_plan(&tc_program("E"), goal(), DemandMode::Off)
            .unwrap();
        assert!(!Arc::ptr_eq(&plain, &planned.compiled));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let mut bad = Program::new();
        bad.add_rule(Rule::new(
            DlAtom::new(Predicate::new("p", 1), vec![DlTerm::var("X")]),
            vec![],
        ));
        let cache = PlanCache::new();
        assert!(cache.get_or_compile(&bad).is_err());
        assert!(cache
            .get_or_plan(&bad, Predicate::new("p", 1), DemandMode::Magic)
            .is_err());
        assert!(cache.is_empty());
    }
}
