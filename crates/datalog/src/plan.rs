//! Rule compilation: join planning and index-backed execution.
//!
//! Each rule is compiled once per [`crate::engine::CompiledProgram`] into a
//! [`CompiledRule`]: a sequence of [`Op`]s over a flat binding array indexed
//! by the rule's [`RuleVars`] numbering. Positive literals are ordered
//! greedily by the number of positions already bound when they are placed
//! (constants count as bound), so joins degrade from index probes to scans
//! only when nothing is bound; negative literals and built-ins are emitted as
//! soon as all their variables are bound, pruning partial bindings as early
//! as possible.
//!
//! Predicates are interned into dense [`PredId`]s at compile time (see
//! [`crate::engine::PredTable`]), so execution never hashes a predicate:
//! relation lookups are vector indexes, and every `(predicate, bound-mask)`
//! index used by a `Probe` op is assigned a dense *slot* here, making
//! [`IndexSpace`] a flat `Vec` as well.
//!
//! Execution probes lazily built hash indexes (see [`IndexSpace`]): one index
//! per `(predicate, bound-position-set)`, mapping the projection of a tuple
//! onto the bound positions to the ids of matching tuples. Because relations
//! are append-only during evaluation, an index is refreshed by scanning only
//! the tuples appended since its last use — no invalidation is ever needed,
//! and the semi-naive delta (an id range per predicate) composes with every
//! index for free.
//!
//! On a layered store ([`crate::store`]) an index slot is a *pair*: the
//! frozen base layer's committed index — built at most once per
//! [`crate::store::BaseStore`] and shared by every run over it — plus this
//! run's private extension over the overlay tuples. A probe looks the key up
//! in both (base ids precede overlay ids, so the merged id list stays
//! ascending); a flat store never attaches a base side, leaving the original
//! single-index behavior untouched.

use std::collections::HashMap;
use std::sync::Arc;

use cqa_core::symbol::Symbol;

use crate::ast::{BodyLiteral, Builtin, DlAtom, DlTerm, Rule, RuleVars};
use crate::engine::{PredId, PredTable, RelationStore};
use crate::fxhash::FxHashMap;
use crate::store::{project_onto_mask, BaseIndex};
use crate::tuple::Tuple;

/// A term resolved against a rule's variable numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// A constant.
    Const(Symbol),
    /// The variable with the given id.
    Var(u32),
}

impl Slot {
    pub(crate) fn of(term: &DlTerm, vars: &RuleVars) -> Slot {
        match term {
            DlTerm::Const(c) => Slot::Const(*c),
            DlTerm::Var(v) => Slot::Var(vars.id(*v).expect("variable occurs in rule")),
        }
    }

    /// Resolves the slot against a binding array (the slot must be bound).
    #[inline]
    pub(crate) fn resolve(self, bindings: &[Option<Symbol>]) -> Symbol {
        match self {
            Slot::Const(c) => c,
            Slot::Var(v) => bindings[v as usize].expect("slot bound by planning invariant"),
        }
    }
}

/// What to do with a tuple position that is *not* part of the probe key.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SlotAction {
    /// First occurrence of a free variable: write the binding.
    Bind(u32),
    /// Repeated occurrence of a variable bound earlier *within this atom*:
    /// compare against the binding.
    CheckVar(u32),
    /// A constant position on a scanned atom: compare directly.
    CheckConst(Symbol),
}

/// A compiled positive literal.
#[derive(Debug, Clone)]
pub(crate) struct AtomPlan {
    /// The interned predicate to match against.
    pub pred: PredId,
    /// Bitmask of positions bound at entry (probe-key positions).
    pub mask: u32,
    /// Dense index slot for `(pred, mask)`, assigned at compile time; only
    /// meaningful on `Probe` ops.
    pub index_slot: u32,
    /// Probe-key slots, in ascending position order (aligned with the
    /// index projection).
    pub key: Vec<Slot>,
    /// Actions for the remaining positions, as `(position, action)`.
    pub rest: Vec<(usize, SlotAction)>,
    /// Variable ids written by this atom (for resetting between candidates).
    pub binds: Vec<u32>,
}

/// A compiled built-in constraint.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CompiledBuiltin {
    Neq(Slot, Slot),
    Eq(Slot, Slot),
    KeyConsistent(Slot, Slot, Slot, Slot),
}

impl CompiledBuiltin {
    pub(crate) fn of(builtin: &Builtin, vars: &RuleVars) -> CompiledBuiltin {
        let s = |t: &DlTerm| Slot::of(t, vars);
        match builtin {
            Builtin::Neq(a, b) => CompiledBuiltin::Neq(s(a), s(b)),
            Builtin::Eq(a, b) => CompiledBuiltin::Eq(s(a), s(b)),
            Builtin::KeyConsistent(a, b, c, d) => {
                CompiledBuiltin::KeyConsistent(s(a), s(b), s(c), s(d))
            }
        }
    }

    #[inline]
    pub(crate) fn holds(self, bindings: &[Option<Symbol>]) -> bool {
        match self {
            CompiledBuiltin::Neq(a, b) => a.resolve(bindings) != b.resolve(bindings),
            CompiledBuiltin::Eq(a, b) => a.resolve(bindings) == b.resolve(bindings),
            CompiledBuiltin::KeyConsistent(x1, y1, x2, y2) => {
                x1.resolve(bindings) != x2.resolve(bindings)
                    || y1.resolve(bindings) == y2.resolve(bindings)
            }
        }
    }
}

/// One step of a compiled rule body.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Enumerate tuples of a predicate (nothing bound, or the semi-naive
    /// delta literal, which enumerates an id range).
    Scan(AtomPlan),
    /// Probe the `(pred, mask)` index with the key slots.
    Probe(AtomPlan),
    /// All positions bound: a set-membership test.
    Exists(AtomPlan),
    /// A ground negative literal: succeed iff the tuple is absent.
    Negative { pred: PredId, args: Vec<Slot> },
    /// A built-in constraint over bound slots.
    Filter(CompiledBuiltin),
}

/// A rule compiled to a join plan.
#[derive(Debug, Clone)]
pub(crate) struct CompiledRule {
    /// The head predicate.
    pub head_pred: PredId,
    /// Head template.
    pub head: Vec<Slot>,
    /// Body operations in execution order.
    pub ops: Vec<Op>,
    /// Number of distinct variables (size of the binding array).
    pub num_vars: usize,
}

/// Assigns dense slots to the `(pred, mask)` indexes a program's `Probe` ops
/// use, so [`IndexSpace`] can be a flat `Vec` instead of a hash map. Shared
/// across all rules of a program: two probes of the same `(pred, mask)`
/// share one index.
#[derive(Debug, Default)]
pub(crate) struct IndexSlots {
    slots: HashMap<(PredId, u32), u32>,
}

impl IndexSlots {
    fn slot(&mut self, pred: PredId, mask: u32) -> u32 {
        let next = self.slots.len() as u32;
        *self.slots.entry((pred, mask)).or_insert(next)
    }

    /// Number of distinct indexes.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Compiles an atom given the set of currently bound variables. Returns the
/// plan and the list of newly bound variable ids.
fn compile_atom(
    atom: &DlAtom,
    vars: &RuleVars,
    bound: &[bool],
    force_scan: bool,
    preds: &mut PredTable,
) -> AtomPlan {
    let mut mask = 0u32;
    let mut key = Vec::new();
    let mut rest = Vec::new();
    let mut binds = Vec::new();
    let mut bound_here: Vec<u32> = Vec::new();
    for (pos, term) in atom.args.iter().enumerate() {
        let slot = Slot::of(term, vars);
        let is_bound = match slot {
            Slot::Const(_) => true,
            Slot::Var(v) => bound[v as usize],
        };
        // The mask is a u32, so positions ≥ 32 (never seen in practice) fall
        // back to per-candidate checks rather than the probe key.
        if is_bound && !force_scan && pos < 32 {
            mask |= 1 << pos;
            key.push(slot);
        } else {
            match slot {
                Slot::Const(c) => rest.push((pos, SlotAction::CheckConst(c))),
                Slot::Var(v) => {
                    if bound[v as usize] || bound_here.contains(&v) {
                        rest.push((pos, SlotAction::CheckVar(v)));
                    } else {
                        bound_here.push(v);
                        binds.push(v);
                        rest.push((pos, SlotAction::Bind(v)));
                    }
                }
            }
        }
    }
    AtomPlan {
        pred: preds.intern(atom.pred),
        mask,
        index_slot: 0,
        key,
        rest,
        binds,
    }
}

/// Number of positions of `atom` bound under `bound` (constants included) —
/// the greedy selectivity score.
fn bound_score(atom: &DlAtom, vars: &RuleVars, bound: &[bool]) -> usize {
    atom.args
        .iter()
        .filter(|t| match t {
            DlTerm::Const(_) => true,
            DlTerm::Var(v) => bound[vars.id(*v).expect("var in rule") as usize],
        })
        .count()
}

/// Compiles a rule into a join plan, interning predicates into `preds` and
/// assigning index slots from `islots`.
///
/// If `delta_pos` is given, the positive literal at that body position is
/// placed first and compiled as a scan; the engine restricts its enumeration
/// to the current delta id range of its predicate.
pub(crate) fn compile_rule(
    rule: &Rule,
    vars: &RuleVars,
    delta_pos: Option<usize>,
    preds: &mut PredTable,
    islots: &mut IndexSlots,
) -> CompiledRule {
    let num_vars = vars.count();
    let mut bound = vec![false; num_vars];
    let mut ops: Vec<Op> = Vec::with_capacity(rule.body.len());

    // Remaining positive literals, by body position.
    let mut positives: Vec<(usize, &DlAtom)> = rule
        .body
        .iter()
        .enumerate()
        .filter_map(|(i, l)| match l {
            BodyLiteral::Positive(a) if Some(i) != delta_pos => Some((i, a)),
            _ => None,
        })
        .collect();
    // Negative and built-in literals not yet emitted.
    let mut pending: Vec<&BodyLiteral> = rule
        .body
        .iter()
        .filter(|l| !matches!(l, BodyLiteral::Positive(_)))
        .collect();

    let mut flush_pending = |bound: &[bool], ops: &mut Vec<Op>, preds: &mut PredTable| {
        pending.retain(|literal| {
            let ready = literal
                .vars()
                .iter()
                .all(|v| bound[vars.id(*v).expect("var in rule") as usize]);
            if !ready {
                return true;
            }
            match literal {
                BodyLiteral::Negative(atom) => ops.push(Op::Negative {
                    pred: preds.intern(atom.pred),
                    args: atom.args.iter().map(|t| Slot::of(t, vars)).collect(),
                }),
                BodyLiteral::Builtin(b) => ops.push(Op::Filter(CompiledBuiltin::of(b, vars))),
                BodyLiteral::Positive(_) => unreachable!("pending holds no positives"),
            }
            false
        });
    };

    if let Some(pos) = delta_pos {
        let BodyLiteral::Positive(atom) = &rule.body[pos] else {
            panic!("delta literal must be positive");
        };
        let plan = compile_atom(atom, vars, &bound, true, preds);
        for &v in &plan.binds {
            bound[v as usize] = true;
        }
        ops.push(Op::Scan(plan));
        flush_pending(&bound, &mut ops, preds);
    } else {
        // Constant-only built-ins (rare) can be checked before any scan.
        flush_pending(&bound, &mut ops, preds);
    }

    while !positives.is_empty() {
        // Greedy: the literal with the most bound positions joins next;
        // ties break towards the original body order.
        let best = positives
            .iter()
            .enumerate()
            .max_by_key(|(i, (_, atom))| (bound_score(atom, vars, &bound), usize::MAX - i))
            .map(|(i, _)| i)
            .expect("nonempty");
        let (_, atom) = positives.remove(best);
        let mut plan = compile_atom(atom, vars, &bound, false, preds);
        for &v in &plan.binds {
            bound[v as usize] = true;
        }
        let arity = atom.args.len();
        let fully_bound = arity > 0 && arity < 32 && plan.mask == (1u32 << arity).wrapping_sub(1);
        ops.push(if fully_bound {
            Op::Exists(plan)
        } else if plan.mask == 0 {
            Op::Scan(plan)
        } else {
            plan.index_slot = islots.slot(plan.pred, plan.mask);
            Op::Probe(plan)
        });
        flush_pending(&bound, &mut ops, preds);
    }
    debug_assert!(pending.is_empty(), "unsafe rule reached the planner");

    CompiledRule {
        head_pred: preds.intern(rule.head.pred),
        head: rule.head.args.iter().map(|t| Slot::of(t, vars)).collect(),
        ops,
        num_vars,
    }
}

/// A `(slot, pred, mask)` triple naming one index a stratum's probes use;
/// collected per stratum at compile time so the parallel driver can bring
/// every needed index up to date *once per round* and then share the
/// [`IndexSpace`] read-only across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ProbeSlot {
    /// Dense index slot (see [`IndexSlots`]).
    pub slot: u32,
    /// Program-scoped predicate id.
    pub pred: PredId,
    /// Bound-position mask.
    pub mask: u32,
}

/// Lazily built hash indexes over one run's relations, one per compile-time
/// index slot (a distinct `(pred, mask)` pair — see [`IndexSlots`]).
///
/// Slot `s` maps the projection of each tuple of its predicate onto the
/// positions in its mask to the ascending ids of matching tuples. Indexes are
/// extended on demand (`upto` tracks how much of the relation has been
/// absorbed); relations only ever grow during evaluation, so extension is
/// sound and cheap.
///
/// When the run's store is an overlay (see [`crate::store`]), the first
/// extension of a slot *attaches* the base layer's committed index instead
/// of absorbing the base tuples — building it through the base's cache if
/// this is the first run over the base to probe this `(pred, mask)` — and
/// the slot's private `entries` then only ever hold overlay ids. On a flat
/// store the base side stays `None` and nothing changes.
///
/// Two usage modes share this structure:
///
/// * the sequential engine probes through [`IndexSpace::probe`], which
///   lazily absorbs freshly appended tuples before every lookup;
/// * the parallel engine extends every slot a stratum needs up front
///   ([`IndexSpace::extend_slot`], once per round) and then lets worker
///   threads look up through the read-only [`IndexSpace::probe_ready`].
#[derive(Debug, Default)]
pub(crate) struct IndexSpace {
    slots: Vec<PredIndex>,
    extensions: u64,
    base_builds: u64,
    build_ns: u64,
}

#[derive(Debug, Default)]
struct PredIndex {
    /// The base layer's committed index, attached on first extension over an
    /// overlay store; `None` on flat stores.
    base: Option<Arc<BaseIndex>>,
    /// Overlay-id entries (ids ≥ the base segment length).
    entries: FxHashMap<Tuple, Vec<u32>>,
    upto: usize,
}

impl IndexSpace {
    pub(crate) fn new(num_slots: usize) -> IndexSpace {
        let mut slots = Vec::with_capacity(num_slots);
        slots.resize_with(num_slots, PredIndex::default);
        IndexSpace {
            slots,
            extensions: 0,
            base_builds: 0,
            build_ns: 0,
        }
    }

    /// Absorbs the tuples appended to `pred`'s relation since slot `slot`
    /// last saw it; on the first pass over an overlay store this attaches
    /// the base's committed `(pred, mask)` index (building it if no run over
    /// this base probed the pair before). Returns true iff overlay tuples
    /// were absorbed (an "extension pass"); the total is tracked for the
    /// engine's evaluation stats.
    pub(crate) fn extend_slot(
        &mut self,
        slot: u32,
        store: &RelationStore,
        pred: PredId,
        mask: u32,
    ) -> bool {
        let view = store.tuples_by_id(pred);
        let base_len = view.base_len();
        // Both slow branches below are timed into `build_ns`; the per-probe
        // fast path (slot already up to date) must stay clock-free.
        if self.slots[slot as usize].upto < base_len {
            let timer = cqa_obs::Stopwatch::start();
            if let Some((base, built)) = store.base_index(pred, mask) {
                self.base_builds += built as u64;
                self.slots[slot as usize].base = Some(base);
            }
            self.slots[slot as usize].upto = base_len;
            self.build_ns += timer.elapsed_ns();
        }
        if self.slots[slot as usize].upto >= view.len() {
            return false;
        }
        let timer = cqa_obs::Stopwatch::start();
        let index = &mut self.slots[slot as usize];
        let mut proj = Tuple::new();
        let skip = index.upto - base_len;
        for (off, tuple) in view.delta_slice().iter().enumerate().skip(skip) {
            project_onto_mask(tuple, mask, &mut proj);
            index
                .entries
                .entry(proj.clone())
                .or_default()
                .push((base_len + off) as u32);
        }
        index.upto = view.len();
        self.extensions += 1;
        self.build_ns += timer.elapsed_ns();
        true
    }

    /// Appends the ids of `pred`'s tuples matching `key` on the positions of
    /// `mask` to `out`, absorbing freshly appended tuples into slot `slot`
    /// first.
    pub(crate) fn probe(
        &mut self,
        slot: u32,
        store: &RelationStore,
        pred: PredId,
        mask: u32,
        key: &[Symbol],
        out: &mut Vec<u32>,
    ) {
        self.extend_slot(slot, store, pred, mask);
        self.probe_ready(slot, key, out);
    }

    /// Read-only lookup against slot `slot`, which the caller must have
    /// brought up to date with [`IndexSpace::extend_slot`]. This is the probe
    /// path worker threads share during a parallel round. Base-layer ids all
    /// precede overlay ids, so the merged list is ascending.
    pub(crate) fn probe_ready(&self, slot: u32, key: &[Symbol], out: &mut Vec<u32>) {
        let index = &self.slots[slot as usize];
        if let Some(ids) = index.base.as_ref().and_then(|b| b.entries.get(key)) {
            out.extend_from_slice(ids);
        }
        if let Some(ids) = index.entries.get(key) {
            out.extend_from_slice(ids);
        }
    }

    /// Number of extension passes that actually absorbed tuples, across all
    /// slots. A pinned regression test keeps the parallel driver honest about
    /// not re-extending after unproductive rounds.
    pub(crate) fn extensions(&self) -> u64 {
        self.extensions
    }

    /// Number of base-layer committed indexes this run *built* (as opposed
    /// to found cached on the base). For a family of runs over one shared
    /// base, only the first run reports nonzero — pinned by a regression
    /// test.
    pub(crate) fn base_builds(&self) -> u64 {
        self.base_builds
    }

    /// Wall-clock nanoseconds spent in the two slow branches above (base
    /// index attach/build, overlay absorption), surfaced through
    /// [`crate::parallel::EvalStats::index_build_ns`].
    pub(crate) fn build_ns(&self) -> u64 {
        self.build_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Predicate, Program};

    fn atom(name: &str, terms: &[DlTerm]) -> DlAtom {
        DlAtom::new(Predicate::new(name, terms.len()), terms.to_vec())
    }

    fn v(name: &str) -> DlTerm {
        DlTerm::var(name)
    }

    fn compile(rule: &Rule, delta_pos: Option<usize>) -> (CompiledRule, PredTable) {
        let vars = rule.numbering();
        let mut preds = PredTable::default();
        let mut islots = IndexSlots::default();
        let plan = compile_rule(rule, &vars, delta_pos, &mut preds, &mut islots);
        (plan, preds)
    }

    #[test]
    fn planner_orders_by_boundness_and_pushes_filters() {
        // head(X, Z) :- E(X, Y), F(Y, Z), X != Z, not G(X, Z).
        let rule = Rule::new(
            atom("head", &[v("X"), v("Z")]),
            vec![
                BodyLiteral::Positive(atom("E", &[v("X"), v("Y")])),
                BodyLiteral::Positive(atom("F", &[v("Y"), v("Z")])),
                BodyLiteral::Builtin(Builtin::Neq(v("X"), v("Z"))),
                BodyLiteral::Negative(atom("G", &[v("X"), v("Z")])),
            ],
        );
        let (plan, preds) = compile(&rule, None);
        assert_eq!(plan.num_vars, 3);
        let id = |name: &str, arity| preds.lookup(Predicate::new(name, arity)).unwrap();
        // First op scans E (nothing bound), second probes F on Y, and the
        // filter + negation follow immediately once X, Z are bound.
        assert!(matches!(&plan.ops[0], Op::Scan(p) if p.pred == id("E", 2)));
        assert!(matches!(&plan.ops[1], Op::Probe(p) if p.pred == id("F", 2) && p.mask == 0b01));
        assert!(matches!(&plan.ops[2], Op::Filter(_) | Op::Negative { .. }));
        assert!(matches!(&plan.ops[3], Op::Filter(_) | Op::Negative { .. }));
    }

    #[test]
    fn fully_bound_atoms_become_existence_checks() {
        // head(X) :- E(X, X), F(X, X).   second atom is fully bound.
        let rule = Rule::new(
            atom("head", &[v("X")]),
            vec![
                BodyLiteral::Positive(atom("E", &[v("X"), v("X")])),
                BodyLiteral::Positive(atom("F", &[v("X"), v("X")])),
            ],
        );
        let (plan, _) = compile(&rule, None);
        assert!(matches!(&plan.ops[0], Op::Scan(_)));
        assert!(matches!(&plan.ops[1], Op::Exists(_)));
    }

    #[test]
    fn delta_literal_is_scheduled_first() {
        // path(X, Z) :- path(X, Y), E(Y, Z): delta on body position 0.
        let rule = Rule::new(
            atom("path", &[v("X"), v("Z")]),
            vec![
                BodyLiteral::Positive(atom("path", &[v("X"), v("Y")])),
                BodyLiteral::Positive(atom("E", &[v("Y"), v("Z")])),
            ],
        );
        let (plan, preds) = compile(&rule, Some(0));
        let path = preds.lookup(Predicate::new("path", 2)).unwrap();
        assert!(matches!(&plan.ops[0], Op::Scan(p) if p.pred == path));
        assert!(matches!(&plan.ops[1], Op::Probe(p) if p.mask == 0b01));
    }

    #[test]
    fn probes_of_the_same_pred_and_mask_share_an_index_slot() {
        let rule = Rule::new(
            atom("head", &[v("X"), v("Z")]),
            vec![
                BodyLiteral::Positive(atom("E", &[v("X"), v("Y")])),
                BodyLiteral::Positive(atom("F", &[v("Y"), v("Z")])),
            ],
        );
        let vars = rule.numbering();
        let mut preds = PredTable::default();
        let mut islots = IndexSlots::default();
        let a = compile_rule(&rule, &vars, None, &mut preds, &mut islots);
        let b = compile_rule(&rule, &vars, None, &mut preds, &mut islots);
        let slot_of = |plan: &CompiledRule| match &plan.ops[1] {
            Op::Probe(p) => p.index_slot,
            other => panic!("expected probe, got {other:?}"),
        };
        assert_eq!(slot_of(&a), slot_of(&b));
        assert_eq!(islots.len(), 1);
    }

    #[test]
    fn repeated_variables_in_a_scanned_atom_check_equality() {
        let rule = Rule::new(
            atom("head", &[v("X")]),
            vec![BodyLiteral::Positive(atom("E", &[v("X"), v("X")]))],
        );
        let (plan, _) = compile(&rule, None);
        let Op::Scan(p) = &plan.ops[0] else {
            panic!("expected scan");
        };
        assert!(matches!(p.rest[0].1, SlotAction::Bind(0)));
        assert!(matches!(p.rest[1].1, SlotAction::CheckVar(0)));
        // Keep the compiler honest about Program imports used by siblings.
        let _ = Program::new();
    }
}
