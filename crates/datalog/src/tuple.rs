//! Compact tuple storage for the engine.
//!
//! Derived relations hold millions of short tuples (the CQA programs of
//! Lemma 14 use arities 1 and 2 exclusively), so tuples up to
//! [`INLINE_ARITY`] symbols are stored inline without heap allocation; longer
//! tuples spill to a `Vec`. [`Symbol`]s are 4-byte interner handles, making
//! the inline representation a small, copy-friendly array.
//!
//! `Tuple` is an enum of the two representations, so the inline case does not
//! carry an (always empty) `Vec` alongside the array: the whole value is at
//! most 32 bytes, and every hot-path clone of an inline tuple is a plain
//! `memcpy`. A unit test pins the size.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::OnceLock;

use cqa_core::symbol::Symbol;

/// Maximum arity stored inline (without heap allocation).
pub const INLINE_ARITY: usize = 4;

/// Padding value for unused inline slots; never observed through the public
/// API (all accessors go through `as_slice`, which truncates to `len`).
fn pad() -> Symbol {
    static PAD: OnceLock<Symbol> = OnceLock::new();
    *PAD.get_or_init(|| Symbol::new(""))
}

/// A tuple of constants with inline storage for small arities.
#[derive(Clone)]
pub enum Tuple {
    /// Up to [`INLINE_ARITY`] symbols stored in place.
    Inline {
        /// Number of occupied slots.
        len: u8,
        /// The symbols; slots at `len..` hold an unobservable padding value.
        syms: [Symbol; INLINE_ARITY],
    },
    /// Longer tuples spill to the heap.
    Spill(Vec<Symbol>),
}

impl Tuple {
    /// The empty tuple.
    pub fn new() -> Tuple {
        Tuple::Inline {
            len: 0,
            syms: [pad(); INLINE_ARITY],
        }
    }

    /// Builds a tuple from a slice of symbols.
    pub fn from_slice(symbols: &[Symbol]) -> Tuple {
        if symbols.len() <= INLINE_ARITY {
            let mut syms = [pad(); INLINE_ARITY];
            syms[..symbols.len()].copy_from_slice(symbols);
            Tuple::Inline {
                len: symbols.len() as u8,
                syms,
            }
        } else {
            Tuple::Spill(symbols.to_vec())
        }
    }

    /// The tuple's symbols.
    pub fn as_slice(&self) -> &[Symbol] {
        match self {
            Tuple::Inline { len, syms } => &syms[..*len as usize],
            Tuple::Spill(v) => v,
        }
    }

    /// Number of symbols.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        match self {
            Tuple::Inline { len, .. } => *len as usize,
            Tuple::Spill(v) => v.len(),
        }
    }

    /// Appends a symbol (used by index-key construction).
    pub fn push(&mut self, s: Symbol) {
        match self {
            Tuple::Inline { len, syms } => {
                let n = *len as usize;
                if n < INLINE_ARITY {
                    syms[n] = s;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_ARITY + 1);
                    v.extend_from_slice(syms);
                    v.push(s);
                    *self = Tuple::Spill(v);
                }
            }
            Tuple::Spill(v) => v.push(s),
        }
    }

    /// Removes all symbols, keeping the current representation (and thus the
    /// spill capacity): a scratch tuple reused across wide projection keys
    /// refills its retained buffer instead of re-allocating.
    pub fn clear(&mut self) {
        match self {
            Tuple::Inline { len, .. } => *len = 0,
            Tuple::Spill(v) => v.clear(),
        }
    }
}

impl Default for Tuple {
    fn default() -> Tuple {
        Tuple::new()
    }
}

impl Deref for Tuple {
    type Target = [Symbol];

    fn deref(&self) -> &[Symbol] {
        self.as_slice()
    }
}

impl Borrow<[Symbol]> for Tuple {
    fn borrow(&self) -> &[Symbol] {
        self.as_slice()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Tuple {}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with the `Hash` of `[Symbol]` so that a `HashSet<Tuple>`
        // can be probed with a `&[Symbol]` through `Borrow`.
        self.as_slice().hash(state)
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Tuple) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Tuple) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<&[Symbol]> for Tuple {
    fn from(s: &[Symbol]) -> Tuple {
        Tuple::from_slice(s)
    }
}

impl From<Vec<Symbol>> for Tuple {
    fn from(v: Vec<Symbol>) -> Tuple {
        if v.len() <= INLINE_ARITY {
            Tuple::from_slice(&v)
        } else {
            Tuple::Spill(v)
        }
    }
}

impl<const N: usize> From<[Symbol; N]> for Tuple {
    fn from(a: [Symbol; N]) -> Tuple {
        Tuple::from_slice(&a)
    }
}

impl FromIterator<Symbol> for Tuple {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> Tuple {
        let mut t = Tuple::new();
        for s in iter {
            t.push(s);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    #[test]
    fn inline_and_spilled_tuples_agree() {
        let short = Tuple::from_slice(&[sym("a"), sym("b")]);
        assert_eq!(short.len(), 2);
        assert_eq!(short.as_slice(), &[sym("a"), sym("b")]);
        let long: Tuple = (0..7).map(|i| sym(&format!("s{i}"))).collect();
        assert_eq!(long.len(), 7);
        assert_eq!(long[6], sym("s6"));
    }

    #[test]
    fn push_crosses_the_inline_boundary() {
        let mut t = Tuple::new();
        for i in 0..6 {
            t.push(sym(&format!("x{i}")));
            assert_eq!(t.len(), i + 1);
            assert_eq!(t[i], sym(&format!("x{i}")));
        }
        assert_eq!(t.as_slice().len(), 6);
        t.clear();
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn hash_set_probes_with_slices() {
        let mut set: HashSet<Tuple> = HashSet::new();
        set.insert(Tuple::from_slice(&[sym("k"), sym("v")]));
        assert!(set.contains([sym("k"), sym("v")].as_slice()));
        assert!(!set.contains([sym("k"), sym("w")].as_slice()));
    }

    #[test]
    fn equality_ignores_padding() {
        let a = Tuple::from_slice(&[sym("x")]);
        let mut b = Tuple::new();
        b.push(sym("x"));
        assert_eq!(a, b);
        assert_ne!(a, Tuple::new());
    }

    #[test]
    fn equality_ignores_representation() {
        // A cleared spill pushed back below the inline arity must equal the
        // inline tuple with the same symbols.
        let mut spilled: Tuple = (0..6).map(|i| sym(&format!("r{i}"))).collect();
        assert!(matches!(spilled, Tuple::Spill(_)));
        spilled.clear();
        spilled.push(sym("r0"));
        let inline = Tuple::from_slice(&[sym("r0")]);
        assert_eq!(spilled, inline);
        use std::hash::{BuildHasher, RandomState};
        let s = RandomState::new();
        assert_eq!(s.hash_one(&spilled), s.hash_one(&inline));
    }

    #[test]
    fn round_trips_arities_zero_through_eight() {
        for arity in 0..=8usize {
            let symbols: Vec<Symbol> = (0..arity).map(|i| sym(&format!("a{i}"))).collect();
            let from_slice = Tuple::from_slice(&symbols);
            let from_iter: Tuple = symbols.iter().copied().collect();
            let from_vec: Tuple = Tuple::from(symbols.clone());
            assert_eq!(from_slice.len(), arity);
            assert_eq!(from_slice.as_slice(), &symbols[..]);
            assert_eq!(from_slice, from_iter);
            assert_eq!(from_slice, from_vec);
            if arity <= INLINE_ARITY {
                assert!(matches!(from_slice, Tuple::Inline { .. }));
            } else {
                assert!(matches!(from_slice, Tuple::Spill(_)));
            }
        }
    }

    #[test]
    fn tuple_fits_in_32_bytes() {
        assert!(
            std::mem::size_of::<Tuple>() <= 32,
            "Tuple grew to {} bytes",
            std::mem::size_of::<Tuple>()
        );
    }
}
