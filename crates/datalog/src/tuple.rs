//! Compact tuple storage for the engine.
//!
//! Derived relations hold millions of short tuples (the CQA programs of
//! Lemma 14 use arities 1 and 2 exclusively), so tuples up to
//! [`INLINE_ARITY`] symbols are stored inline without heap allocation; longer
//! tuples spill to a `Vec`. [`Symbol`]s are 4-byte interner handles, making
//! the inline representation a small, copy-friendly array.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::OnceLock;

use cqa_core::symbol::Symbol;

/// Maximum arity stored inline (without heap allocation).
pub const INLINE_ARITY: usize = 4;

/// Padding value for unused inline slots; never observed through the public
/// API (all accessors go through `as_slice`, which truncates to `len`).
fn pad() -> Symbol {
    static PAD: OnceLock<Symbol> = OnceLock::new();
    *PAD.get_or_init(|| Symbol::new(""))
}

/// A tuple of constants with inline storage for small arities.
#[derive(Clone)]
pub struct Tuple {
    len: u32,
    inline: [Symbol; INLINE_ARITY],
    spill: Vec<Symbol>,
}

impl Tuple {
    /// The empty tuple.
    pub fn new() -> Tuple {
        Tuple::from_slice(&[])
    }

    /// Builds a tuple from a slice of symbols.
    pub fn from_slice(symbols: &[Symbol]) -> Tuple {
        if symbols.len() <= INLINE_ARITY {
            let mut inline = [pad(); INLINE_ARITY];
            inline[..symbols.len()].copy_from_slice(symbols);
            Tuple {
                len: symbols.len() as u32,
                inline,
                spill: Vec::new(),
            }
        } else {
            Tuple {
                len: symbols.len() as u32,
                inline: [pad(); INLINE_ARITY],
                spill: symbols.to_vec(),
            }
        }
    }

    /// The tuple's symbols.
    pub fn as_slice(&self) -> &[Symbol] {
        if self.len as usize <= INLINE_ARITY {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Number of symbols.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Appends a symbol (used by index-key construction).
    pub fn push(&mut self, s: Symbol) {
        let n = self.len as usize;
        if n < INLINE_ARITY {
            self.inline[n] = s;
        } else {
            if n == INLINE_ARITY {
                self.spill.reserve(INLINE_ARITY + 1);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(s);
        }
        self.len += 1;
    }

    /// Removes all symbols, keeping the spill capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }
}

impl Default for Tuple {
    fn default() -> Tuple {
        Tuple::new()
    }
}

impl Deref for Tuple {
    type Target = [Symbol];

    fn deref(&self) -> &[Symbol] {
        self.as_slice()
    }
}

impl Borrow<[Symbol]> for Tuple {
    fn borrow(&self) -> &[Symbol] {
        self.as_slice()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Tuple {}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with the `Hash` of `[Symbol]` so that a `HashSet<Tuple>`
        // can be probed with a `&[Symbol]` through `Borrow`.
        self.as_slice().hash(state)
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Tuple) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Tuple) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<&[Symbol]> for Tuple {
    fn from(s: &[Symbol]) -> Tuple {
        Tuple::from_slice(s)
    }
}

impl From<Vec<Symbol>> for Tuple {
    fn from(v: Vec<Symbol>) -> Tuple {
        Tuple::from_slice(&v)
    }
}

impl<const N: usize> From<[Symbol; N]> for Tuple {
    fn from(a: [Symbol; N]) -> Tuple {
        Tuple::from_slice(&a)
    }
}

impl FromIterator<Symbol> for Tuple {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> Tuple {
        let mut t = Tuple::new();
        for s in iter {
            t.push(s);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    #[test]
    fn inline_and_spilled_tuples_agree() {
        let short = Tuple::from_slice(&[sym("a"), sym("b")]);
        assert_eq!(short.len(), 2);
        assert_eq!(short.as_slice(), &[sym("a"), sym("b")]);
        let long: Tuple = (0..7).map(|i| sym(&format!("s{i}"))).collect();
        assert_eq!(long.len(), 7);
        assert_eq!(long[6], sym("s6"));
    }

    #[test]
    fn push_crosses_the_inline_boundary() {
        let mut t = Tuple::new();
        for i in 0..6 {
            t.push(sym(&format!("x{i}")));
            assert_eq!(t.len(), i + 1);
            assert_eq!(t[i], sym(&format!("x{i}")));
        }
        assert_eq!(t.as_slice().len(), 6);
        t.clear();
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn hash_set_probes_with_slices() {
        let mut set: HashSet<Tuple> = HashSet::new();
        set.insert(Tuple::from_slice(&[sym("k"), sym("v")]));
        assert!(set.contains([sym("k"), sym("v")].as_slice()));
        assert!(!set.contains([sym("k"), sym("w")].as_slice()));
    }

    #[test]
    fn equality_ignores_padding() {
        let a = Tuple::from_slice(&[sym("x")]);
        let mut b = Tuple::new();
        b.push(sym("x"));
        assert_eq!(a, b);
        assert_ne!(a, Tuple::new());
    }
}
