//! Shape-specialized execution kernels for the unary/binary fragment.
//!
//! Generated CQA programs (Lemma 14) are overwhelmingly unary and binary
//! predicates over dense interned ids, yet the generic engine evaluates them
//! through boxed [`Tuple`]s, `Option<Symbol>` binding arrays and hash-index
//! probes keyed by projected tuples. This module compiles eligible rules a
//! *second* time into a monomorphic register machine over raw `u32` symbol
//! ids:
//!
//! * **Columnar scans** ([`KOp::Scan1`]/[`KOp::Scan2`]) walk the store's
//!   `u32` column mirrors ([`crate::store`]) instead of tuple vectors;
//! * **CSR probes** ([`KOp::ProbeCsr`]) look a key id up in a CSR adjacency
//!   ([`CsrIndex`]) — an O(1) offset pair on the dense representation, no
//!   tuple projection and no hashing — with the committed base layer's CSR
//!   built once per [`crate::store::BaseStore`] and shared across runs,
//!   exactly like the generic path's committed hash indexes;
//! * **Bitset membership** ([`KOp::Exists1`]/[`KOp::Neg1`]) answers unary
//!   (possibly negated) existence checks in one word load;
//! * a **sort-merge fast path** handles the hot binary-binary join shape
//!   (`h(..) :- scan R(X, Y), probe S by Y`) on large scan ranges by
//!   sorting the scanned `(key, other)` pairs and fetching each CSR bucket
//!   once per distinct key.
//!
//! # Translation, not re-planning
//!
//! [`compile_kernel`] translates an existing generic [`CompiledRule`] op by
//! op — same greedy join order, same delta literal, same filter placement —
//! so a kernel enumerates candidate bindings in *exactly* the order the
//! generic executor would (CSR buckets list ascending tuple ids, matching
//! [`crate::plan::IndexSpace::probe_ready`]), and the sequential engine's
//! store contents stay identical with kernels on or off. Rules that do not
//! fit — an atom of arity > 2, or a probe into a predicate of the *current*
//! stratum, whose relation grows mid-fixpoint while CSR adjacency is a
//! rebuild-on-growth structure — simply keep their generic plan; selection
//! is per rule, recorded in the compiled program, and reported through
//! [`crate::parallel::EvalStats::kernel_rules`] /
//! [`crate::parallel::EvalStats::generic_rules`].
//!
//! The `PATH_CQA_KERNELS` environment override and the
//! [`crate::parallel::Kernels`] knob in [`crate::parallel::EvalOptions`]
//! pick the path at *execution* time (kernels are always compiled), so plan
//! caches are oblivious to the knob and a suspected kernel bug can be
//! bisected at runtime.
//!
//! # Kernels and differential maintenance
//!
//! Kernels are *insert-only*: every op appends candidate head tuples to a
//! growing store, and the CSR/columnar structures they probe are
//! build-on-growth. The delete passes of differential maintenance
//! ([`crate::maintain`]) — DRed overdeletion and support-count decrements —
//! physically *remove* tuples and must re-read mixed old/new states per
//! literal, which no kernel shape supports. Maintenance therefore always
//! runs through its own generic two-state matcher, regardless of the
//! `Kernels` knob; kernels still serve full (re)materializations — the
//! bootstrap and unprofitable-fallback paths — where evaluation is
//! insert-only again.

use std::collections::HashMap;
use std::sync::Arc;

use cqa_core::symbol::Symbol;

use crate::plan::{CompiledBuiltin, CompiledRule, Op, Slot, SlotAction};
use crate::store::{CsrIndex, PredId, RelationStore};
use crate::tuple::Tuple;

/// A value source: a register (variable id) or an inlined constant id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KSlot {
    /// The register holding the variable with this id.
    Reg(u32),
    /// A constant's raw interner id.
    Const(u32),
}

impl KSlot {
    fn of(slot: Slot) -> KSlot {
        match slot {
            Slot::Const(c) => KSlot::Const(c.id()),
            Slot::Var(v) => KSlot::Reg(v),
        }
    }

    #[inline]
    fn resolve(self, regs: &[u32]) -> u32 {
        match self {
            KSlot::Reg(r) => regs[r as usize],
            KSlot::Const(c) => c,
        }
    }
}

/// Per-column action against a scanned or probed value. Registers are plain
/// `u32`s overwritten in place — the planner's bound-before-use invariant
/// makes resets unnecessary (every read is dominated by a write on the same
/// path), which is precisely what lets the kernel drop `Option<Symbol>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KAction {
    /// First occurrence of a variable: write the register.
    Bind(u32),
    /// Repeated occurrence: compare against the register.
    CheckReg(u32),
    /// A constant position: compare directly.
    CheckConst(u32),
}

impl KAction {
    fn of(action: SlotAction) -> KAction {
        match action {
            SlotAction::Bind(v) => KAction::Bind(v),
            SlotAction::CheckVar(v) => KAction::CheckReg(v),
            SlotAction::CheckConst(c) => KAction::CheckConst(c.id()),
        }
    }

    #[inline]
    fn apply(self, value: u32, regs: &mut [u32]) -> bool {
        match self {
            KAction::Bind(r) => {
                regs[r as usize] = value;
                true
            }
            KAction::CheckReg(r) => regs[r as usize] == value,
            KAction::CheckConst(c) => c == value,
        }
    }
}

/// A built-in constraint over `u32` ids (symbol equality is id equality).
#[derive(Debug, Clone, Copy)]
pub(crate) enum KBuiltin {
    Neq(KSlot, KSlot),
    Eq(KSlot, KSlot),
    KeyConsistent(KSlot, KSlot, KSlot, KSlot),
}

impl KBuiltin {
    fn of(builtin: CompiledBuiltin) -> KBuiltin {
        let k = KSlot::of;
        match builtin {
            CompiledBuiltin::Neq(a, b) => KBuiltin::Neq(k(a), k(b)),
            CompiledBuiltin::Eq(a, b) => KBuiltin::Eq(k(a), k(b)),
            CompiledBuiltin::KeyConsistent(a, b, c, d) => {
                KBuiltin::KeyConsistent(k(a), k(b), k(c), k(d))
            }
        }
    }

    #[inline]
    fn holds(self, regs: &[u32]) -> bool {
        match self {
            KBuiltin::Neq(a, b) => a.resolve(regs) != b.resolve(regs),
            KBuiltin::Eq(a, b) => a.resolve(regs) == b.resolve(regs),
            KBuiltin::KeyConsistent(x1, y1, x2, y2) => {
                x1.resolve(regs) != x2.resolve(regs) || y1.resolve(regs) == y2.resolve(regs)
            }
        }
    }
}

/// One step of a kernel body, mirroring [`Op`] on the unary/binary fragment.
#[derive(Debug, Clone)]
pub(crate) enum KOp {
    /// Columnar scan of a unary relation (the depth-0 op honors the caller's
    /// id range — delta or chunk — like the generic scan).
    Scan1 { pred: PredId, act: KAction },
    /// Columnar scan of a binary relation.
    Scan2 {
        pred: PredId,
        a0: KAction,
        a1: KAction,
    },
    /// CSR probe of a binary relation keyed on one column.
    ProbeCsr { slot: u32, key: KSlot, act: KAction },
    /// Bitset membership on a unary relation.
    Exists1 { pred: PredId, arg: KSlot },
    /// Hash-set membership on a binary relation.
    Exists2 { pred: PredId, args: [KSlot; 2] },
    /// Negated bitset membership on a unary relation.
    Neg1 { pred: PredId, arg: KSlot },
    /// Negated membership on a binary relation.
    Neg2 { pred: PredId, args: [KSlot; 2] },
    /// A built-in filter over registers.
    Filter(KBuiltin),
}

/// The sort-merge fast path for the two-op `[Scan2, ProbeCsr]` shape with
/// all-`Bind` actions: sort the scanned `(key, other)` pairs, then emit one
/// CSR bucket fetch per distinct key. Output *order* differs from the nested
/// loop (it is sorted by key), but the derived set is identical and the
/// choice depends only on the scan-range length — deterministic per input.
#[derive(Debug, Clone)]
struct MergePlan {
    /// The scanned predicate (same as the first op's).
    scan_pred: PredId,
    /// Which scanned column feeds the probe key (0 or 1).
    key_col: u8,
    /// The probe's CSR slot.
    slot: u32,
    /// Head template over the three joined values.
    head: Vec<MSlot>,
}

#[derive(Debug, Clone, Copy)]
enum MSlot {
    /// The scanned key-column value.
    Key,
    /// The scanned other-column value.
    Other,
    /// The probed bucket value.
    Probe,
    /// An inlined constant id.
    Const(u32),
}

/// Minimum scan-range length before the sort pays for itself.
const MERGE_MIN: usize = 4096;

/// Names one CSR adjacency a kernel probe reads: the dense [`KernelSpace`]
/// slot plus the program-scoped predicate and key column to build it from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CsrSlotSpec {
    pub(crate) slot: u32,
    pub(crate) pred: PredId,
    pub(crate) key_col: u8,
}

/// A rule compiled to the specialized register machine. Produced by
/// [`compile_kernel`] alongside (never instead of) the generic plan.
#[derive(Debug, Clone)]
pub(crate) struct KernelRule {
    /// Head template; emission reconstitutes [`Symbol`]s from register ids.
    head: Vec<KSlot>,
    /// Body steps in the generic plan's execution order.
    ops: Vec<KOp>,
    /// Register count (the generic plan's `num_vars`).
    num_regs: usize,
    /// The CSR slots this rule's probes read, deduped — the sequential
    /// engine prepares exactly these before running the rule.
    pub(crate) csr_slots: Vec<CsrSlotSpec>,
    /// Sort-merge fast path, when the rule has the eligible shape.
    merge: Option<MergePlan>,
}

/// Assigns dense [`KernelSpace`] slots to the `(pred, key column)` CSR
/// adjacencies a program's kernel probes use; the kernel analogue of
/// [`crate::plan::IndexSlots`], shared across all rules of a program.
#[derive(Debug, Default)]
pub(crate) struct CsrSlots {
    slots: HashMap<(PredId, u8), u32>,
}

impl CsrSlots {
    fn slot(&mut self, pred: PredId, key_col: u8) -> u32 {
        let next = self.slots.len() as u32;
        *self.slots.entry((pred, key_col)).or_insert(next)
    }

    /// Number of distinct adjacencies.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Translates a generic plan into a kernel, or `None` if the rule does not
/// fit the fragment: every positive literal must have arity 1 or 2, probes
/// must key a binary predicate on one column, and — the one *semantic*
/// restriction — a probed predicate must not belong to `stratum_preds`
/// (the current stratum), because CSR adjacency is rebuilt on growth and a
/// same-stratum relation grows every round of the fixpoint. Such rules keep
/// their generic plan (per-rule fallback, e.g. nonlinear transitive
/// closure).
pub(crate) fn compile_kernel(
    plan: &CompiledRule,
    stratum_preds: &[PredId],
    kslots: &mut CsrSlots,
) -> Option<KernelRule> {
    let mut ops = Vec::with_capacity(plan.ops.len());
    let mut csr_slots: Vec<CsrSlotSpec> = Vec::new();
    for op in &plan.ops {
        let kop = match op {
            Op::Scan(ap) => {
                // A scan has an empty key, so its arity is its action count
                // (compile_atom emits one action per position, ascending).
                match ap.rest.as_slice() {
                    [(0, a)] => KOp::Scan1 {
                        pred: ap.pred,
                        act: KAction::of(*a),
                    },
                    [(0, a0), (1, a1)] => KOp::Scan2 {
                        pred: ap.pred,
                        a0: KAction::of(*a0),
                        a1: KAction::of(*a1),
                    },
                    _ => return None,
                }
            }
            Op::Probe(ap) => {
                // Binary relations only probe on a single bound column (two
                // bound columns would have compiled to Exists), and the
                // probed predicate must be fixed for the whole stratum.
                if stratum_preds.contains(&ap.pred) {
                    return None;
                }
                let (key_col, act) = match (ap.mask, ap.key.as_slice(), ap.rest.as_slice()) {
                    (0b01, [key], [(1, a)]) => (0u8, (*key, KAction::of(*a))),
                    (0b10, [key], [(0, a)]) => (1u8, (*key, KAction::of(*a))),
                    _ => return None,
                };
                let slot = kslots.slot(ap.pred, key_col);
                let spec = CsrSlotSpec {
                    slot,
                    pred: ap.pred,
                    key_col,
                };
                if !csr_slots.contains(&spec) {
                    csr_slots.push(spec);
                }
                KOp::ProbeCsr {
                    slot,
                    key: KSlot::of(act.0),
                    act: act.1,
                }
            }
            Op::Exists(ap) => match ap.key.as_slice() {
                [a] => KOp::Exists1 {
                    pred: ap.pred,
                    arg: KSlot::of(*a),
                },
                [a, b] => KOp::Exists2 {
                    pred: ap.pred,
                    args: [KSlot::of(*a), KSlot::of(*b)],
                },
                _ => return None,
            },
            Op::Negative { pred, args } => match args.as_slice() {
                [a] => KOp::Neg1 {
                    pred: *pred,
                    arg: KSlot::of(*a),
                },
                [a, b] => KOp::Neg2 {
                    pred: *pred,
                    args: [KSlot::of(*a), KSlot::of(*b)],
                },
                _ => return None,
            },
            Op::Filter(builtin) => KOp::Filter(KBuiltin::of(*builtin)),
        };
        ops.push(kop);
    }
    let head: Vec<KSlot> = plan.head.iter().map(|&s| KSlot::of(s)).collect();
    let merge = merge_plan(&ops, &head);
    Some(KernelRule {
        head,
        ops,
        num_regs: plan.num_vars,
        csr_slots,
        merge,
    })
}

/// Detects the sort-merge-eligible shape: exactly `[Scan2, ProbeCsr]`, all
/// three columns freshly bound, the probe keyed by a scanned register, and a
/// head drawn from those three values (or constants).
fn merge_plan(ops: &[KOp], head: &[KSlot]) -> Option<MergePlan> {
    let [KOp::Scan2 {
        pred,
        a0: KAction::Bind(r0),
        a1: KAction::Bind(r1),
    }, KOp::ProbeCsr {
        slot,
        key: KSlot::Reg(rk),
        act: KAction::Bind(rp),
    }] = ops
    else {
        return None;
    };
    let key_col = if rk == r0 {
        0u8
    } else if rk == r1 {
        1u8
    } else {
        return None;
    };
    let head: Option<Vec<MSlot>> = head
        .iter()
        .map(|&s| match s {
            KSlot::Const(c) => Some(MSlot::Const(c)),
            KSlot::Reg(r) if r == *rp => Some(MSlot::Probe),
            KSlot::Reg(r) if r == *rk => Some(MSlot::Key),
            KSlot::Reg(r) if (r == *r0 || r == *r1) && r != *rk => Some(MSlot::Other),
            KSlot::Reg(_) => None,
        })
        .collect();
    Some(MergePlan {
        scan_pred: *pred,
        key_col,
        slot: *slot,
        head: head?,
    })
}

/// Per-run CSR adjacencies, one per compile-time [`CsrSlots`] slot: the
/// committed base layer's CSR (attached through the
/// [`crate::store::BaseStore`] cache, built at most once per base) plus this
/// run's overlay side, rebuilt whenever the relation has grown since the
/// slot was last prepared. Kernel probes only target predicates outside the
/// stratum being evaluated, so a slot is rebuilt at most once per stratum —
/// and for flat EDB relations, once per run.
#[derive(Debug, Default)]
pub(crate) struct KernelSpace {
    slots: Vec<KernelSlot>,
    base_builds: u64,
    build_ns: u64,
}

#[derive(Debug, Default)]
struct KernelSlot {
    base: Option<Arc<CsrIndex>>,
    over: Option<CsrIndex>,
    upto: usize,
}

impl KernelSpace {
    pub(crate) fn new(num_slots: usize) -> KernelSpace {
        let mut slots = Vec::with_capacity(num_slots);
        slots.resize_with(num_slots, KernelSlot::default);
        KernelSpace {
            slots,
            base_builds: 0,
            build_ns: 0,
        }
    }

    /// Brings one slot up to date with the store: attaches the committed
    /// base CSR on first contact (building it through the base's cache if
    /// this run is the first over the base to probe the pair) and rebuilds
    /// the overlay side if the relation grew. A no-op when nothing changed.
    pub(crate) fn prepare(
        &mut self,
        spec: CsrSlotSpec,
        pred_map: &[PredId],
        store: &RelationStore,
    ) {
        let pred = pred_map[spec.pred.index()];
        let len = store.len_of(pred);
        let slot = &mut self.slots[spec.slot as usize];
        if slot.upto == len && slot.over.is_some() {
            return;
        }
        let timer = cqa_obs::Stopwatch::start();
        let cols = store.cols2_by_id(pred);
        if slot.base.is_none() && !cols.base0.is_empty() {
            if let Some((csr, built)) = store.base_csr(pred, spec.key_col) {
                self.base_builds += built as u64;
                slot.base = Some(csr);
            }
        }
        let (keys, vals) = match spec.key_col {
            0 => (cols.delta0, cols.delta1),
            _ => (cols.delta1, cols.delta0),
        };
        slot.over = Some(CsrIndex::build(keys, vals));
        slot.upto = len;
        self.build_ns += timer.elapsed_ns();
    }

    /// The base and overlay buckets for `key` — base ids precede overlay
    /// ids, so walking both in order enumerates candidates ascending, like
    /// the generic probe.
    #[inline]
    fn buckets(&self, slot: u32, key: u32) -> (&[u32], &[u32]) {
        let s = &self.slots[slot as usize];
        (
            s.base.as_deref().map_or(&[][..], |b| b.bucket(key)),
            s.over.as_ref().map_or(&[][..], |o| o.bucket(key)),
        )
    }

    /// Committed base CSRs this run built (vs found cached); folded into
    /// [`crate::parallel::EvalStats::base_index_builds`].
    pub(crate) fn base_builds(&self) -> u64 {
        self.base_builds
    }

    /// Wall-clock nanoseconds spent attaching/building CSRs (base and
    /// overlay sides); folded into
    /// [`crate::parallel::EvalStats::index_build_ns`].
    pub(crate) fn build_ns(&self) -> u64 {
        self.build_ns
    }
}

/// Reusable kernel execution state: the flat `u32` register file.
#[derive(Debug, Default)]
pub(crate) struct KernelExecutor {
    regs: Vec<u32>,
}

impl KernelExecutor {
    /// Derives all head tuples of a kernel rule into `out`; mirrors
    /// [`crate::engine::Executor::derive`], including the depth-0 range
    /// contract. The caller must have prepared the rule's `csr_slots`
    /// against `kernels`.
    pub(crate) fn derive(
        &mut self,
        k: &KernelRule,
        pred_map: &[PredId],
        store: &RelationStore,
        kernels: &KernelSpace,
        range: Option<(usize, usize)>,
        out: &mut Vec<Tuple>,
    ) {
        if let Some(m) = &k.merge {
            let len = match range {
                Some((lo, hi)) => hi - lo,
                None => store.len_of(pred_map[m.scan_pred.index()]),
            };
            if len >= MERGE_MIN {
                self.derive_merge(m, pred_map, store, kernels, range, out);
                return;
            }
        }
        self.regs.clear();
        self.regs.resize(k.num_regs, 0);
        self.step(k, 0, pred_map, store, kernels, range, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        k: &KernelRule,
        depth: usize,
        pred_map: &[PredId],
        store: &RelationStore,
        kernels: &KernelSpace,
        range: Option<(usize, usize)>,
        out: &mut Vec<Tuple>,
    ) {
        let Some(op) = k.ops.get(depth) else {
            out.push(
                k.head
                    .iter()
                    .map(|slot| Symbol::from_id(slot.resolve(&self.regs)))
                    .collect(),
            );
            return;
        };
        match *op {
            KOp::Scan1 { pred, act } => {
                let cols = store.cols1_by_id(pred_map[pred.index()]);
                let (lo, hi) = match range {
                    Some(r) if depth == 0 => r,
                    _ => (0, cols.base.len() + cols.delta.len()),
                };
                let (base, overlay) = cols.segments(lo, hi);
                for segment in [base, overlay] {
                    for &v in segment {
                        if act.apply(v, &mut self.regs) {
                            self.step(k, depth + 1, pred_map, store, kernels, range, out);
                        }
                    }
                }
            }
            KOp::Scan2 { pred, a0, a1 } => {
                let cols = store.cols2_by_id(pred_map[pred.index()]);
                let (lo, hi) = match range {
                    Some(r) if depth == 0 => r,
                    _ => (0, cols.base0.len() + cols.delta0.len()),
                };
                let ((b0, b1), (d0, d1)) = cols.segments(lo, hi);
                for (s0, s1) in [(b0, b1), (d0, d1)] {
                    for (&x, &y) in s0.iter().zip(s1) {
                        if a0.apply(x, &mut self.regs) && a1.apply(y, &mut self.regs) {
                            self.step(k, depth + 1, pred_map, store, kernels, range, out);
                        }
                    }
                }
            }
            KOp::ProbeCsr { slot, key, act } => {
                let (base, overlay) = kernels.buckets(slot, key.resolve(&self.regs));
                for segment in [base, overlay] {
                    for &v in segment {
                        if act.apply(v, &mut self.regs) {
                            self.step(k, depth + 1, pred_map, store, kernels, range, out);
                        }
                    }
                }
            }
            KOp::Exists1 { pred, arg } => {
                let cols = store.cols1_by_id(pred_map[pred.index()]);
                if cols.contains(arg.resolve(&self.regs)) {
                    self.step(k, depth + 1, pred_map, store, kernels, range, out);
                }
            }
            KOp::Exists2 { pred, args } => {
                if self.contains2(pred_map, store, pred, args) {
                    self.step(k, depth + 1, pred_map, store, kernels, range, out);
                }
            }
            KOp::Neg1 { pred, arg } => {
                let cols = store.cols1_by_id(pred_map[pred.index()]);
                if !cols.contains(arg.resolve(&self.regs)) {
                    self.step(k, depth + 1, pred_map, store, kernels, range, out);
                }
            }
            KOp::Neg2 { pred, args } => {
                if !self.contains2(pred_map, store, pred, args) {
                    self.step(k, depth + 1, pred_map, store, kernels, range, out);
                }
            }
            KOp::Filter(builtin) => {
                if builtin.holds(&self.regs) {
                    self.step(k, depth + 1, pred_map, store, kernels, range, out);
                }
            }
        }
    }

    #[inline]
    fn contains2(
        &self,
        pred_map: &[PredId],
        store: &RelationStore,
        pred: PredId,
        args: [KSlot; 2],
    ) -> bool {
        let ground = [
            Symbol::from_id(args[0].resolve(&self.regs)),
            Symbol::from_id(args[1].resolve(&self.regs)),
        ];
        store.contains_by_id(pred_map[pred.index()], &ground)
    }

    /// The sort-merge path: gather `(key, other)` pairs from the scan range,
    /// sort, and walk equal-key runs with one bucket fetch each.
    fn derive_merge(
        &mut self,
        m: &MergePlan,
        pred_map: &[PredId],
        store: &RelationStore,
        kernels: &KernelSpace,
        range: Option<(usize, usize)>,
        out: &mut Vec<Tuple>,
    ) {
        let cols = store.cols2_by_id(pred_map[m.scan_pred.index()]);
        let (lo, hi) = range.unwrap_or((0, cols.base0.len() + cols.delta0.len()));
        let ((b0, b1), (d0, d1)) = cols.segments(lo, hi);
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(hi - lo);
        for (s0, s1) in [(b0, b1), (d0, d1)] {
            match m.key_col {
                0 => pairs.extend(s0.iter().copied().zip(s1.iter().copied())),
                _ => pairs.extend(s1.iter().copied().zip(s0.iter().copied())),
            }
        }
        pairs.sort_unstable();
        let emit = |key: u32, other: u32, probe: u32, out: &mut Vec<Tuple>| {
            out.push(
                m.head
                    .iter()
                    .map(|slot| {
                        Symbol::from_id(match slot {
                            MSlot::Key => key,
                            MSlot::Other => other,
                            MSlot::Probe => probe,
                            MSlot::Const(c) => *c,
                        })
                    })
                    .collect(),
            );
        };
        let mut i = 0;
        while i < pairs.len() {
            let key = pairs[i].0;
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0 == key {
                j += 1;
            }
            let (base, overlay) = kernels.buckets(m.slot, key);
            if !(base.is_empty() && overlay.is_empty()) {
                for &(_, other) in &pairs[i..j] {
                    for segment in [base, overlay] {
                        for &probe in segment {
                            emit(key, other, probe, out);
                        }
                    }
                }
            }
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BodyLiteral, Builtin, DlAtom, DlTerm, Predicate, Rule};
    use crate::engine::{edb_from_instance, PredTable};
    use crate::plan::{compile_rule, IndexSlots, IndexSpace};
    use cqa_db::instance::DatabaseInstance;

    fn atom(name: &str, terms: &[DlTerm]) -> DlAtom {
        DlAtom::new(Predicate::new(name, terms.len()), terms.to_vec())
    }

    fn v(name: &str) -> DlTerm {
        DlTerm::var(name)
    }

    fn compile_both(
        rule: &Rule,
        delta_pos: Option<usize>,
        stratum: &[&str],
    ) -> (CompiledRule, Option<KernelRule>, PredTable) {
        let vars = rule.numbering();
        let mut preds = PredTable::default();
        let mut islots = IndexSlots::default();
        let plan = compile_rule(rule, &vars, delta_pos, &mut preds, &mut islots);
        let stratum_ids: Vec<PredId> = stratum
            .iter()
            .filter_map(|name| {
                preds
                    .iter()
                    .find(|(_, p)| p.name.as_str() == *name)
                    .map(|(id, _)| id)
            })
            .collect();
        let mut kslots = CsrSlots::default();
        let kernel = compile_kernel(&plan, &stratum_ids, &mut kslots);
        (plan, kernel, preds)
    }

    #[test]
    fn linear_tc_delta_rule_is_kernel_eligible() {
        // path(X, Z) :- path(X, Y), E(Y, Z) with delta on path: the probe
        // targets E, which is outside the stratum.
        let rule = Rule::new(
            atom("path", &[v("X"), v("Z")]),
            vec![
                BodyLiteral::Positive(atom("path", &[v("X"), v("Y")])),
                BodyLiteral::Positive(atom("E", &[v("Y"), v("Z")])),
            ],
        );
        let (_, kernel, _) = compile_both(&rule, Some(0), &["path"]);
        let kernel = kernel.expect("linear tc delta rule should take the kernel path");
        assert!(matches!(kernel.ops[0], KOp::Scan2 { .. }));
        assert!(matches!(kernel.ops[1], KOp::ProbeCsr { .. }));
        assert_eq!(kernel.csr_slots.len(), 1);
        assert!(kernel.merge.is_some(), "two-op all-bind shape merges");
    }

    #[test]
    fn same_stratum_probes_fall_back_to_generic() {
        // Nonlinear tc: the probe targets path itself, which grows every
        // round — kernel selection must decline.
        let rule = Rule::new(
            atom("path", &[v("X"), v("Z")]),
            vec![
                BodyLiteral::Positive(atom("path", &[v("X"), v("Y")])),
                BodyLiteral::Positive(atom("path", &[v("Y"), v("Z")])),
            ],
        );
        let (_, kernel, _) = compile_both(&rule, Some(0), &["path"]);
        assert!(kernel.is_none());
    }

    #[test]
    fn wide_atoms_fall_back_to_generic() {
        let rule = Rule::new(
            atom("h", &[v("X")]),
            vec![BodyLiteral::Positive(atom("T", &[v("X"), v("Y"), v("Z")]))],
        );
        let (_, kernel, _) = compile_both(&rule, None, &["h"]);
        assert!(kernel.is_none());
    }

    #[test]
    fn negation_builtins_and_unary_checks_translate() {
        // h(X) :- adom(X), not key(X), E(X, Y), X != Y.
        let rule = Rule::new(
            atom("h", &[v("X")]),
            vec![
                BodyLiteral::Positive(atom("adom", &[v("X")])),
                BodyLiteral::Negative(atom("key", &[v("X")])),
                BodyLiteral::Positive(atom("E", &[v("X"), v("Y")])),
                BodyLiteral::Builtin(Builtin::Neq(v("X"), v("Y"))),
            ],
        );
        let (plan, kernel, _) = compile_both(&rule, None, &["h"]);
        let kernel = kernel.expect("unary/binary fragment translates");
        assert_eq!(kernel.ops.len(), plan.ops.len());
        assert!(kernel.ops.iter().any(|op| matches!(op, KOp::Neg1 { .. })));
        assert!(kernel.ops.iter().any(|op| matches!(op, KOp::Filter(_))));
    }

    #[test]
    fn kernel_derives_the_same_tuples_in_the_same_order_as_generic() {
        let mut db = DatabaseInstance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("b", "d"), ("c", "a"), ("d", "d")] {
            db.insert_parsed("E", a, b);
            db.insert_parsed("F", b, a);
        }
        let mut store = edb_from_instance(&db);
        // h(X, Z) :- E(X, Y), F(Y, Z): scan E, probe F on its first column.
        let rule = Rule::new(
            atom("h", &[v("X"), v("Z")]),
            vec![
                BodyLiteral::Positive(atom("E", &[v("X"), v("Y")])),
                BodyLiteral::Positive(atom("F", &[v("Y"), v("Z")])),
            ],
        );
        let vars = rule.numbering();
        let mut preds = PredTable::default();
        let mut islots = IndexSlots::default();
        let plan = compile_rule(&rule, &vars, None, &mut preds, &mut islots);
        let mut kslots = CsrSlots::default();
        let kernel = compile_kernel(&plan, &[], &mut kslots).expect("eligible");

        let pred_map: Vec<PredId> = preds.iter().map(|(_, p)| store.intern(p)).collect();
        let store = store;

        let mut generic_out = Vec::new();
        let mut executor = crate::engine::Executor::default();
        let mut indexes = IndexSpace::new(islots.len());
        executor.derive(
            &plan,
            &pred_map,
            &store,
            &mut crate::engine::Probing::Lazy(&mut indexes),
            None,
            &mut generic_out,
        );

        let mut kspace = KernelSpace::new(kslots.len());
        for &spec in &kernel.csr_slots {
            kspace.prepare(spec, &pred_map, &store);
        }
        let mut kernel_out = Vec::new();
        KernelExecutor::default().derive(
            &kernel,
            &pred_map,
            &store,
            &kspace,
            None,
            &mut kernel_out,
        );

        assert_eq!(generic_out, kernel_out, "same tuples in the same order");
        assert!(!kernel_out.is_empty());
    }
}
