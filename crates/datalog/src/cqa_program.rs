//! Generation of the linear Datalog program of Lemma 14 for path queries
//! satisfying C2 (via their strict B2b decomposition `q = s (uv)^(k-1) w v`).
//!
//! The program derives a unary predicate `o` such that `db` is a
//! "no"-instance of `CERTAINTY(q)` iff `o(c)` holds for **every**
//! `c ∈ adom(db)` (Claim 4 in the paper). The predicates follow Section 6.3:
//!
//! * `key_R(X) :- R(X, _)` — the keys with an outgoing `R`-edge;
//! * `uvterminal`, `wvterminal` — terminal vertices for the self-join-free
//!   words `uv` and `wv`;
//! * `uvpath(X, Y)` — a `uv`-step chain between `wv`-terminal vertices
//!   (the only recursive predicate; the recursion is linear);
//! * `p(X)` — the predicate `P` of Lemma 14: an `uv`-chain of `wv`-terminal
//!   vertices ending in a `uv`-terminal vertex or in a cycle;
//! * `spine_terminal(X)` — terminal vertices for the spine `s (uv)^(k-1)`,
//!   encoded with explicit `consistent/4` constraints because the spine may
//!   repeat relation names;
//! * `o(X)` — the predicate `O`: either `X` is spine-terminal, or a
//!   consistent spine path leads from `X` to some `Y` with `p(Y)`.

use std::collections::BTreeMap;
use std::sync::Arc;

use cqa_core::regex_forms::B2bDecomposition;
use cqa_core::symbol::RelName;
use cqa_core::word::Word;

use crate::ast::{BodyLiteral, Builtin, DlAtom, DlTerm, Predicate, Program, Rule};
use crate::demand::{Demand, DemandMode, DemandReport};
use crate::engine::CompiledProgram;
use crate::plan_cache::PlanCache;

/// Names of the generated predicates, so that callers can query the result.
#[derive(Debug, Clone)]
pub struct CqaProgram {
    /// The generated program, as transformed under `mode` (with
    /// [`DemandMode::Off`] this is exactly the Lemma 14 program; under
    /// pruning/magic only the `o/1` extension is guaranteed unchanged).
    /// Shared out of the [`PlanCache`], like the compiled plan: repeated
    /// generation of the same query's program never re-transforms.
    pub program: Arc<Program>,
    /// The `o/1` answer predicate.
    pub o: Predicate,
    /// The `p/1` predicate of Lemma 14.
    pub p: Predicate,
    /// The `uvpath/2` recursive predicate.
    pub uvpath: Predicate,
    /// The decomposition the program was generated from.
    pub decomposition: B2bDecomposition,
    /// The resolved demand mode `program` was transformed under.
    pub mode: DemandMode,
    /// What the demand transformation did (all zero for
    /// [`DemandMode::Off`]).
    pub demand: DemandReport,
    /// The compiled evaluation plan, shared through the process-wide
    /// [`PlanCache`]: generating the same query's program twice hands back
    /// the same `Arc`, so repeated certain-answer calls never re-plan.
    pub compiled: Arc<CompiledProgram>,
}

fn rel_pred(rel: RelName) -> Predicate {
    Predicate {
        name: rel.symbol(),
        arity: 2,
    }
}

/// Interned `key_R/1` predicates, computed once per relation name: the
/// terminal rules reference them once per word position, and interning a
/// formatted string each time would hit the global interner lock in a loop.
struct KeyPreds {
    map: BTreeMap<RelName, Predicate>,
}

impl KeyPreds {
    fn for_relations(rels: &[RelName]) -> KeyPreds {
        KeyPreds {
            map: rels
                .iter()
                .map(|&rel| (rel, Predicate::new(&format!("key_{rel}"), 1)))
                .collect(),
        }
    }

    fn get(&self, rel: RelName) -> Predicate {
        self.map[&rel]
    }
}

fn var(prefix: &str, i: usize) -> DlTerm {
    DlTerm::var(&format!("{prefix}{i}"))
}

/// Appends the chain `word[0](X0, X1), word[1](X1, X2), …` to a rule body,
/// using variables `{prefix}0 … {prefix}n`. Returns the number of atoms added.
fn chain_atoms(body: &mut Vec<BodyLiteral>, word: &Word, prefix: &str) {
    for (i, rel) in word.iter().enumerate() {
        body.push(BodyLiteral::Positive(DlAtom::new(
            rel_pred(rel),
            vec![var(prefix, i), var(prefix, i + 1)],
        )));
    }
}

/// Adds `consistent/4` constraints between every pair of same-relation atoms
/// of the chain `word` over variables `{prefix}i`.
fn consistency_constraints(body: &mut Vec<BodyLiteral>, word: &Word, prefix: &str) {
    for i in 0..word.len() {
        for j in i + 1..word.len() {
            if word[i] == word[j] {
                body.push(BodyLiteral::Builtin(Builtin::KeyConsistent(
                    var(prefix, i),
                    var(prefix, i + 1),
                    var(prefix, j),
                    var(prefix, j + 1),
                )));
            }
        }
    }
}

/// Generates the terminal rules for a word: `terminal(X0)` holds iff some
/// consistent path with a proper-prefix trace of `word` starting at `X0`
/// reaches a vertex with no outgoing edge for the next relation name.
fn terminal_rules(program: &mut Program, terminal: Predicate, word: &Word, keys: &KeyPreds) {
    if word.is_empty() {
        return;
    }
    // i = 0: no outgoing edge of the first relation at all.
    program.add_rule(Rule::new(
        DlAtom::new(terminal, vec![var("T", 0)]),
        vec![
            BodyLiteral::Positive(DlAtom::new(Predicate::new("adom", 1), vec![var("T", 0)])),
            BodyLiteral::Negative(DlAtom::new(keys.get(word[0]), vec![var("T", 0)])),
        ],
    ));
    for i in 1..word.len() {
        let prefix = word.prefix(i);
        let mut body = Vec::new();
        chain_atoms(&mut body, &prefix, "T");
        consistency_constraints(&mut body, &prefix, "T");
        body.push(BodyLiteral::Negative(DlAtom::new(
            keys.get(word[i]),
            vec![var("T", i)],
        )));
        program.add_rule(Rule::new(DlAtom::new(terminal, vec![var("T", 0)]), body));
    }
}

/// Generates the linear Datalog program of Lemma 14 for the decomposition
/// `q = s (uv)^(k-1) w v`, compiling it through the process-wide
/// [`PlanCache`] (so generating the same query's program twice shares one
/// compilation).
///
/// Returns `None` if the decomposition is degenerate (`uv = ε`), in which
/// case the query is self-join-free and the FO rewriting should be used
/// instead.
pub fn generate_program(decomposition: &B2bDecomposition, query: &Word) -> Option<CqaProgram> {
    generate_program_with_cache(decomposition, query, PlanCache::global())
}

/// [`generate_program`] against an explicit plan cache. Benchmarks use a
/// fresh cache per call to measure the cold (plan-every-call) path; everyone
/// else wants [`generate_program`].
pub fn generate_program_with_cache(
    decomposition: &B2bDecomposition,
    query: &Word,
    cache: &PlanCache,
) -> Option<CqaProgram> {
    generate_program_with_options(decomposition, query, cache, Demand::Auto)
}

/// [`generate_program`] with an explicit plan cache and demand setting: the
/// Lemma 14 program is built, then transformed for the `o/1` goal under the
/// resolved demand mode (see [`crate::demand`]) and compiled through the
/// cache, keyed by the *untransformed* program plus the mode — so on a warm
/// cache both the transformation and the join planning are skipped.
pub fn generate_program_with_options(
    decomposition: &B2bDecomposition,
    query: &Word,
    cache: &PlanCache,
    demand: Demand,
) -> Option<CqaProgram> {
    let uv = decomposition.uv();
    let wv = decomposition.wv();
    let spine = decomposition.spine();
    if uv.is_empty() {
        return None;
    }
    debug_assert_eq!(&decomposition.reassemble(), query);

    let mut program = Program::new();
    let adom = Predicate::new("adom", 1);
    program.declare_edb(adom);
    // EDB relations: all relation names mentioned anywhere.
    let mut rels: Vec<RelName> = query.symbols().into_iter().collect();
    for extra in uv.symbols().into_iter().chain(wv.symbols()) {
        if !rels.contains(&extra) {
            rels.push(extra);
        }
    }
    for &rel in &rels {
        program.declare_edb(rel_pred(rel));
    }
    let keys = KeyPreds::for_relations(&rels);

    // key_R(X) :- R(X, Y).
    for &rel in &rels {
        program.add_rule(Rule::new(
            DlAtom::new(keys.get(rel), vec![DlTerm::var("X")]),
            vec![BodyLiteral::Positive(DlAtom::new(
                rel_pred(rel),
                vec![DlTerm::var("X"), DlTerm::var("Y")],
            ))],
        ));
    }

    let uvterminal = Predicate::new("uvterminal", 1);
    let wvterminal = Predicate::new("wvterminal", 1);
    let spine_terminal = Predicate::new("spineterminal", 1);
    let uvpath = Predicate::new("uvpath", 2);
    let p = Predicate::new("p", 1);
    let o = Predicate::new("o", 1);

    terminal_rules(&mut program, uvterminal, &uv, &keys);
    terminal_rules(&mut program, wvterminal, &wv, &keys);
    terminal_rules(&mut program, spine_terminal, &spine, &keys);

    // uvpath(X0, Xn) :- wvterminal(X0), uv-chain, wvterminal(Xn).
    {
        let mut body = vec![BodyLiteral::Positive(DlAtom::new(
            wvterminal,
            vec![var("U", 0)],
        ))];
        chain_atoms(&mut body, &uv, "U");
        body.push(BodyLiteral::Positive(DlAtom::new(
            wvterminal,
            vec![var("U", uv.len())],
        )));
        program.add_rule(Rule::new(
            DlAtom::new(uvpath, vec![var("U", 0), var("U", uv.len())]),
            body,
        ));
    }
    // uvpath(S, Xn) :- uvpath(S, X0), uv-chain, wvterminal(Xn).
    {
        let mut body = vec![BodyLiteral::Positive(DlAtom::new(
            uvpath,
            vec![DlTerm::var("S"), var("U", 0)],
        ))];
        chain_atoms(&mut body, &uv, "U");
        body.push(BodyLiteral::Positive(DlAtom::new(
            wvterminal,
            vec![var("U", uv.len())],
        )));
        program.add_rule(Rule::new(
            DlAtom::new(uvpath, vec![DlTerm::var("S"), var("U", uv.len())]),
            body,
        ));
    }

    // p(X) :- uvterminal(X), wvterminal(X).
    program.add_rule(Rule::new(
        DlAtom::new(p, vec![DlTerm::var("X")]),
        vec![
            BodyLiteral::Positive(DlAtom::new(uvterminal, vec![DlTerm::var("X")])),
            BodyLiteral::Positive(DlAtom::new(wvterminal, vec![DlTerm::var("X")])),
        ],
    ));
    // p(X) :- uvpath(X, Y), uvterminal(Y).
    program.add_rule(Rule::new(
        DlAtom::new(p, vec![DlTerm::var("X")]),
        vec![
            BodyLiteral::Positive(DlAtom::new(
                uvpath,
                vec![DlTerm::var("X"), DlTerm::var("Y")],
            )),
            BodyLiteral::Positive(DlAtom::new(uvterminal, vec![DlTerm::var("Y")])),
        ],
    ));
    // p(X) :- uvpath(X, Y), uvpath(Y, Y).   (the cycle case)
    program.add_rule(Rule::new(
        DlAtom::new(p, vec![DlTerm::var("X")]),
        vec![
            BodyLiteral::Positive(DlAtom::new(
                uvpath,
                vec![DlTerm::var("X"), DlTerm::var("Y")],
            )),
            BodyLiteral::Positive(DlAtom::new(
                uvpath,
                vec![DlTerm::var("Y"), DlTerm::var("Y")],
            )),
        ],
    ));

    // o(X) :- spineterminal(X).
    if !spine.is_empty() {
        program.add_rule(Rule::new(
            DlAtom::new(o, vec![DlTerm::var("X")]),
            vec![BodyLiteral::Positive(DlAtom::new(
                spine_terminal,
                vec![DlTerm::var("X")],
            ))],
        ));
    }
    // o(X0) :- spine-chain (consistent), p(Xn).
    {
        let mut body = Vec::new();
        if spine.is_empty() {
            body.push(BodyLiteral::Positive(DlAtom::new(adom, vec![var("S", 0)])));
        } else {
            chain_atoms(&mut body, &spine, "S");
            consistency_constraints(&mut body, &spine, "S");
        }
        body.push(BodyLiteral::Positive(DlAtom::new(
            p,
            vec![var("S", spine.len())],
        )));
        program.add_rule(Rule::new(DlAtom::new(o, vec![var("S", 0)]), body));
    }

    let mode = demand.resolve();
    let planned = cache
        .get_or_plan(&program, o, mode)
        .expect("generated programs are safe and stratified by construction");
    Some(CqaProgram {
        program: Arc::clone(&planned.program),
        o,
        p,
        uvpath,
        decomposition: decomposition.clone(),
        mode,
        demand: planned.report,
        compiled: Arc::clone(&planned.compiled),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::evaluate;
    use crate::stratify::{is_linear, stratify};
    use cqa_core::query::PathQuery;
    use cqa_core::regex_forms::b2b_strict_decomposition;
    use cqa_db::instance::DatabaseInstance;

    fn program_for(word: &str) -> CqaProgram {
        let q = PathQuery::parse(word).unwrap();
        let dec = b2b_strict_decomposition(q.word()).expect("decomposition exists");
        generate_program(&dec, q.word()).expect("program generated")
    }

    /// Oracle: db is a "no"-instance iff some repair falsifies q.
    fn is_certain(db: &DatabaseInstance, word: &str) -> bool {
        let q = PathQuery::parse(word).unwrap();
        db.repairs().all(|r| r.satisfies_word(q.word()))
    }

    /// Runs the generated program and applies Claim 4: the instance is
    /// certain iff o(c) fails for some constant.
    fn certain_via_datalog(db: &DatabaseInstance, word: &str) -> bool {
        let cqa = program_for(word);
        let store = evaluate(&cqa.program, db).unwrap();
        let o_holds = store.unary(cqa.o).unwrap();
        db.adom().iter().any(|c| !o_holds.contains(c.symbol()))
    }

    fn program_for_mode(word: &str, demand: Demand) -> CqaProgram {
        let q = PathQuery::parse(word).unwrap();
        let dec = b2b_strict_decomposition(q.word()).expect("decomposition exists");
        generate_program_with_options(&dec, q.word(), PlanCache::global(), demand)
            .expect("program generated")
    }

    #[test]
    fn generated_program_is_stratified_linear_and_safe() {
        // Linearity (the NL upper bound of Lemma 14) is a property of the
        // *untransformed* program: the magic rewrite trades it away for
        // goal-directedness, which the engine is free to do since it never
        // requires linearity.
        for word in ["RRX", "UVUVWV", "RXRX", "RR"] {
            let cqa = program_for_mode(word, Demand::Off);
            assert!(cqa.program.is_safe(), "{word}: unsafe");
            assert!(stratify(&cqa.program).is_ok(), "{word}: not stratified");
            assert!(is_linear(&cqa.program), "{word}: not linear");
        }
    }

    #[test]
    fn demand_transformed_programs_stay_safe_and_stratified() {
        for word in ["RRX", "UVUVWV", "RXRX", "RR"] {
            for demand in [Demand::Prune, Demand::Magic] {
                let cqa = program_for_mode(word, demand);
                assert!(cqa.program.is_safe(), "{word}: unsafe");
                assert!(stratify(&cqa.program).is_ok(), "{word}: not stratified");
            }
            // The magic rewrite genuinely restricts the recursion: uvpath is
            // seeded from the spine's endpoints instead of derived in full.
            let cqa = program_for_mode(word, Demand::Magic);
            assert!(
                cqa.demand.restricted_predicates >= 1,
                "{word}: nothing restricted"
            );
            assert!(cqa.program.to_string().contains("magic$uvpath"), "{word}");
        }
    }

    #[test]
    fn figure_2_instance_is_certain_for_rrx() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "3");
        db.insert_parsed("R", "2", "3");
        db.insert_parsed("X", "3", "4");
        assert!(is_certain(&db, "RRX"));
        assert!(certain_via_datalog(&db, "RRX"));
    }

    #[test]
    fn dead_end_instance_is_not_certain_for_rrx() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "3");
        db.insert_parsed("X", "2", "4");
        // The repair choosing R(1,3) has no RRX path.
        assert!(!is_certain(&db, "RRX"));
        assert!(!certain_via_datalog(&db, "RRX"));
    }

    #[test]
    fn datalog_matches_oracle_on_random_instances_for_rrx() {
        let mut state = 0xabcdef12u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            let n = 6;
            let mut db = DatabaseInstance::new();
            let facts = 3 + (next() % 8) as usize;
            for _ in 0..facts {
                let rel = if next() % 3 == 0 { "X" } else { "R" };
                let a = next() % n;
                let b = next() % n;
                db.insert_parsed(rel, &format!("v{a}"), &format!("v{b}"));
            }
            if db.repair_count() > 4096 {
                continue;
            }
            assert_eq!(
                certain_via_datalog(&db, "RRX"),
                is_certain(&db, "RRX"),
                "round {round}: {db:?}"
            );
        }
    }

    #[test]
    fn datalog_matches_oracle_on_random_instances_for_uvuvwv() {
        let mut state = 0x13572468u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..30 {
            let n = 5;
            let mut db = DatabaseInstance::new();
            let facts = 4 + (next() % 10) as usize;
            for _ in 0..facts {
                let rel = match next() % 3 {
                    0 => "U",
                    1 => "V",
                    _ => "W",
                };
                let a = next() % n;
                let b = next() % n;
                db.insert_parsed(rel, &format!("v{a}"), &format!("v{b}"));
            }
            if db.repair_count() > 4096 {
                continue;
            }
            assert_eq!(
                certain_via_datalog(&db, "UVUVWV"),
                is_certain(&db, "UVUVWV"),
                "round {round}: {db:?}"
            );
        }
    }

    #[test]
    fn program_text_mentions_the_expected_predicates() {
        let cqa = program_for("UVUVWV");
        let text = cqa.program.to_string();
        assert!(text.contains("uvterminal"));
        assert!(text.contains("wvterminal"));
        assert!(text.contains("uvpath"));
        assert!(text.contains("o("));
        assert!(text.contains("consistent(") || !text.contains("consistent("));
    }

    #[test]
    fn degenerate_decomposition_is_rejected() {
        // A self-join-free query decomposes with uv = ε; the generator
        // declines and the caller should use the FO rewriting.
        let q = PathQuery::parse("RXY").unwrap();
        if let Some(dec) = b2b_strict_decomposition(q.word()) {
            if dec.uv().is_empty() {
                assert!(generate_program(&dec, q.word()).is_none());
            }
        }
    }
}
